"""Core data structure for Input/Output Interactive Markov Chains.

An I/O-IMC (Section 2 of the paper) is a transition system with two kinds of
transitions:

* *interactive* transitions, labelled with an action name whose kind (input,
  output or internal) is determined by the automaton's :class:`Signature`;
* *Markovian* transitions, labelled with a rate ``lambda`` of an exponential
  delay.

States are represented as integers ``0 .. num_states - 1``; an optional list
of human readable state names can be attached for debugging and
visualisation.  Each state may additionally carry a set of atomic
propositions (*labels*) such as ``"down"`` — labels survive composition and
minimisation and are used to identify system-failure states when the final
model is converted into a labelled CTMC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import InputEnablednessError, ModelError
from ..nputil import csr_indptr, dedupe_packed_triples, gather_row_indices, rows_from_edges
from .actions import ActionKind, Signature, natural_sort_key


@dataclass(frozen=True)
class InteractiveTransition:
    """One interactive transition ``source --action--> target``."""

    source: int
    action: str
    target: int


@dataclass(frozen=True)
class MarkovianTransition:
    """One Markovian transition ``source --rate--> target``."""

    source: int
    rate: float
    target: int


class IOIMC:
    """An Input/Output Interactive Markov Chain.

    Parameters
    ----------
    name:
        Human readable name of the automaton (used in diagnostics only).
    signature:
        Partition of the action names into inputs, outputs and internals.
    num_states:
        Number of states; states are the integers ``0 .. num_states - 1``.
    initial:
        Index of the initial state.
    interactive:
        For every state, a list of ``(action, target)`` pairs.
    markovian:
        For every state, a list of ``(rate, target)`` pairs.
    labels:
        Optional mapping from state index to a set of atomic propositions.
    state_names:
        Optional human readable state names (one per state).
    """

    __slots__ = (
        "name",
        "signature",
        "num_states",
        "initial",
        "_interactive",
        "_markovian",
        "labels",
        "state_names",
        "_index",
        "_transition_counts",
    )

    def __init__(
        self,
        name: str,
        signature: Signature,
        num_states: int,
        initial: int,
        interactive: Sequence[Sequence[tuple[str, int]]],
        markovian: Sequence[Sequence[tuple[float, int]]],
        labels: Mapping[int, frozenset[str]] | None = None,
        state_names: Sequence[str] | None = None,
    ) -> None:
        if num_states <= 0:
            raise ModelError("an I/O-IMC needs at least one state")
        if not 0 <= initial < num_states:
            raise ModelError(f"initial state {initial} out of range 0..{num_states - 1}")
        if len(interactive) != num_states or len(markovian) != num_states:
            raise ModelError("transition tables must have exactly one entry per state")
        self.name = name
        self.signature = signature
        self.num_states = num_states
        self.initial = initial
        self._interactive: list[list[tuple[str, int]]] | None = [
            list(row) for row in interactive
        ]
        self._markovian: list[list[tuple[float, int]]] | None = [
            list(row) for row in markovian
        ]
        self.labels: dict[int, frozenset[str]] = {
            state: frozenset(props) for state, props in (labels or {}).items() if props
        }
        self.state_names = list(state_names) if state_names is not None else None
        self._index = None
        self._transition_counts = None
        self._validate()

    @classmethod
    def trusted(
        cls,
        name: str,
        signature: Signature,
        num_states: int,
        initial: int,
        interactive: list[list[tuple[str, int]]],
        markovian: list[list[tuple[float, int]]],
        labels: Mapping[int, frozenset[str]] | None = None,
        state_names: list[str] | None = None,
    ) -> "IOIMC":
        """Construct without validation or defensive copies (internal use only).

        The library's own transformations (composition, hiding, reductions,
        quotients) produce transition tables that are valid by construction;
        re-validating and re-copying them accounted for a measurable share of
        the composition pipeline's runtime.  Callers hand over ownership of
        ``interactive``/``markovian``/``state_names`` and must guarantee every
        invariant that ``__init__`` checks.
        """
        self = cls.__new__(cls)
        self.name = name
        self.signature = signature
        self.num_states = num_states
        self.initial = initial
        self._interactive = interactive
        self._markovian = markovian
        self.labels = {
            state: props for state, props in (labels or {}).items() if props
        }
        self.state_names = state_names
        self._index = None
        self._transition_counts = None
        return self

    def index(self):
        """The cached :class:`~repro.ioimc.indexed.TransitionIndex` of this automaton."""
        if self._index is None:
            from .indexed import TransitionIndex

            self._index = TransitionIndex(self)
        return self._index

    # ------------------------------------------------------------------ #
    # transition tables
    # ------------------------------------------------------------------ #
    # The library's own transformations construct automata from the flat CSR
    # arrays of a pre-seeded TransitionIndex and leave the Python rows
    # unmaterialised; the properties below rebuild them on first access (in
    # CSR edge order, which is exactly the order an eager construction would
    # have produced).  Invariant: whenever a row table is None, ``_index``
    # carries explicit CSR tables for it.

    @property
    def interactive(self) -> list[list[tuple[str, int]]]:
        """Per state, the ``(action, target)`` interactive transitions."""
        rows = self._interactive
        if rows is None:
            csr = self._index.interactive_csr
            names = np.array(self._index.actions)
            rows = rows_from_edges(
                csr.source,
                names[csr.action].tolist(),
                csr.target.tolist(),
                self.num_states,
            )
            self._interactive = rows
        return rows

    @property
    def markovian(self) -> list[list[tuple[float, int]]]:
        """Per state, the ``(rate, target)`` Markovian transitions."""
        rows = self._markovian
        if rows is None:
            csr = self._index._markovian_csr
            rows = rows_from_edges(
                csr.source, csr.rate.tolist(), csr.target.tolist(), self.num_states
            )
            self._markovian = rows
        return rows

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        known = self.signature.all_actions
        for state, row in enumerate(self.interactive):
            for action, target in row:
                if action not in known:
                    raise ModelError(
                        f"{self.name}: state {state} uses action {action!r} "
                        "which is not declared in the signature"
                    )
                if not 0 <= target < self.num_states:
                    raise ModelError(f"{self.name}: interactive target {target} out of range")
        for state, row in enumerate(self.markovian):
            for rate, target in row:
                if rate <= 0:
                    raise ModelError(
                        f"{self.name}: state {state} has a non-positive Markovian rate {rate}"
                    )
                if not 0 <= target < self.num_states:
                    raise ModelError(f"{self.name}: Markovian target {target} out of range")
        for state in self.labels:
            if not 0 <= state < self.num_states:
                raise ModelError(f"{self.name}: label attached to unknown state {state}")
        if self.state_names is not None and len(self.state_names) != self.num_states:
            raise ModelError(f"{self.name}: need exactly one state name per state")

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def states(self) -> range:
        """Iterate over all state indices."""
        return range(self.num_states)

    def state_name(self, state: int) -> str:
        """Human readable name of ``state`` (falls back to the index)."""
        if self.state_names is not None:
            return self.state_names[state]
        return f"s{state}"

    def label_of(self, state: int) -> frozenset[str]:
        """Atomic propositions attached to ``state``."""
        return self.labels.get(state, frozenset())

    def kind_of(self, action: str) -> ActionKind:
        """Kind of ``action`` in this automaton's signature."""
        return self.signature.kind_of(action)

    def interactive_successors(self, state: int, action: str) -> list[int]:
        """Targets of all ``action`` transitions leaving ``state``."""
        return [target for act, target in self.interactive[state] if act == action]

    def enabled_actions(self, state: int) -> set[str]:
        """All actions with at least one transition leaving ``state``."""
        return {action for action, _ in self.interactive[state]}

    def enabled_urgent_actions(self, state: int) -> set[str]:
        """Output and internal actions enabled in ``state`` (cannot be delayed)."""
        urgent = set()
        for action, _ in self.interactive[state]:
            if self.signature.kind_of(action) is not ActionKind.INPUT:
                urgent.add(action)
        return urgent

    def is_stable(self, state: int) -> bool:
        """A state is *stable* when no output or internal transition is enabled.

        Only stable states may let time pass (maximal progress assumption);
        Markovian transitions are therefore only meaningful in stable states.
        """
        return not self.enabled_urgent_actions(state)

    def exit_rate(self, state: int) -> float:
        """Sum of the Markovian rates leaving ``state``."""
        return sum(rate for rate, _ in self.markovian[state])

    def num_interactive_transitions(self) -> int:
        """Total number of interactive transitions."""
        return self._counts()[0]

    def num_markovian_transitions(self) -> int:
        """Total number of Markovian transitions."""
        return self._counts()[1]

    def _counts(self) -> tuple[int, int]:
        if self._transition_counts is None:
            if self._interactive is None:
                interactive_count = self._index.interactive_csr.num_edges
            else:
                interactive_count = sum(len(row) for row in self._interactive)
            if self._markovian is None:
                markovian_count = self._index._markovian_csr.num_edges
            else:
                markovian_count = sum(len(row) for row in self._markovian)
            self._transition_counts = (interactive_count, markovian_count)
        return self._transition_counts

    def num_transitions(self) -> int:
        """Total number of transitions of either kind."""
        return self.num_interactive_transitions() + self.num_markovian_transitions()

    def iter_interactive(self) -> Iterator[InteractiveTransition]:
        """Iterate over all interactive transitions."""
        for source, row in enumerate(self.interactive):
            for action, target in row:
                yield InteractiveTransition(source, action, target)

    def iter_markovian(self) -> Iterator[MarkovianTransition]:
        """Iterate over all Markovian transitions."""
        for source, row in enumerate(self.markovian):
            for rate, target in row:
                yield MarkovianTransition(source, rate, target)

    # ------------------------------------------------------------------ #
    # input enabledness
    # ------------------------------------------------------------------ #
    def missing_inputs(self, state: int) -> set[str]:
        """Input actions for which ``state`` has no explicit transition."""
        return set(self.signature.inputs) - self.enabled_actions(state)

    def check_input_enabled(self) -> None:
        """Raise :class:`InputEnablednessError` unless every state accepts every input."""
        for state in self.states():
            missing = self.missing_inputs(state)
            if missing:
                raise InputEnablednessError(
                    f"{self.name}: state {self.state_name(state)} has no transition "
                    f"for input action(s) {sorted(missing)}"
                )

    def ensure_input_enabled(self) -> "IOIMC":
        """Return an equivalent I/O-IMC with explicit input self-loops added.

        The paper omits these self-loops in figures "for the sake of clarity";
        semantically a state without an explicit ``a?`` transition simply stays
        put when ``a`` occurs.  This helper materialises that convention.
        """
        inputs = self.signature.inputs
        if not inputs:
            return self
        if self._interactive is None and self._fully_input_enabled():
            # CSR fast path: quotients/products of input-enabled automata are
            # input-enabled already — confirm without materialising the rows.
            return self
        interactive: list[list[tuple[str, int]]] = []
        changed = False
        for state, row in enumerate(self.interactive):
            missing = inputs - {action for action, _ in row}
            if missing:
                # Natural name order (not set hash order): the self-loop
                # positions then depend only on the naming scheme, keeping
                # replicated blocks structurally aligned for the cache.
                interactive.append(
                    list(row)
                    + [
                        (action, state)
                        for action in sorted(missing, key=natural_sort_key)
                    ]
                )
                changed = True
            else:
                interactive.append(row)
        if not changed:
            return self
        return IOIMC.trusted(
            self.name,
            self.signature,
            self.num_states,
            self.initial,
            interactive,
            self.markovian,
            self.labels,
            self.state_names,
        )

    def _fully_input_enabled(self) -> bool:
        """Vectorised check that every state enables every input action."""
        index = self._index
        csr = index.interactive_csr
        is_input_edge = index.input_flags[csr.action]
        num_inputs = int(index.input_flags.sum())
        if num_inputs == 0:
            return True
        pairs = np.unique(
            csr.source[is_input_edge].astype(np.int64) * len(index.actions)
            + csr.action[is_input_edge]
        )
        distinct_inputs = np.bincount(
            pairs // len(index.actions), minlength=self.num_states
        )
        return bool((distinct_inputs == num_inputs).all())

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def relabel_states(self, mapping: Mapping[int, int], num_new_states: int) -> "IOIMC":
        """Quotient/rename states according to ``mapping`` (old -> new index).

        Interactive transitions of all merged states are unioned (duplicates
        are dropped).  Markovian rates are taken from a single *representative*
        state per block (the first state of the block in state order), with
        parallel rates into the same target block summed — this is the
        quotient construction used by (bi)simulation lumping, where all
        states of a block have, by definition, the same cumulative rate into
        every other block.

        Runs over the flat CSR arrays of the cached
        :class:`~repro.ioimc.indexed.TransitionIndex`: the unioned
        interactive rows are one ``np.unique`` over packed
        ``(new source, action, new target)`` triples.
        """
        index = self.index()
        interactive_csr = index.interactive_csr
        markovian_csr = index.markovian_csr()
        block = np.fromiter(
            (mapping[old] for old in self.states()),
            dtype=np.int64,
            count=self.num_states,
        )

        new_src, action, new_tgt = dedupe_packed_triples(
            block[interactive_csr.source],
            interactive_csr.action.astype(np.int64),
            block[interactive_csr.target],
            len(index.actions),
            num_new_states,
        )

        # One representative old state per new state: the first occurrence in
        # state order (new states without a preimage keep an empty row).
        present, representative = np.unique(block, return_index=True)
        picked = gather_row_indices(markovian_csr.indptr, representative)
        rate_src = rate_tgt = np.empty(0, dtype=np.int64)
        rate_sum = np.empty(0, dtype=np.float64)
        if len(picked):
            pair = block[markovian_csr.source[picked]] * num_new_states + block[
                markovian_csr.target[picked]
            ]
            unique_pairs, pair_index = np.unique(pair, return_inverse=True)
            rate_sum = np.bincount(pair_index, weights=markovian_csr.rate[picked])
            rate_src, rate_tgt = np.divmod(unique_pairs, num_new_states)

        labels: dict[int, set[str]] = {}
        for old, props in self.labels.items():
            labels.setdefault(int(block[old]), set()).update(props)
        names = [f"s{index}" for index in range(num_new_states)]
        for new, old in zip(present.tolist(), representative.tolist()):
            names[new] = self.state_name(old)
        quotient = IOIMC.trusted(
            self.name,
            self.signature,
            num_new_states,
            mapping[self.initial],
            None,  # rows materialise lazily from the index attached below
            None,
            {state: frozenset(props) for state, props in labels.items()},
            names,
        )
        quotient._index = index.derive(
            quotient,
            _interactive_csr_from_edges(new_src, action, new_tgt, num_new_states),
            _markovian_csr_from_edges(rate_src, rate_sum, rate_tgt, num_new_states),
        )
        return quotient

    def restrict_to_reachable(self) -> "IOIMC":
        """Drop states that are unreachable from the initial state."""
        reachable = self._reachable_mask()
        num_reachable = int(reachable.sum())
        if num_reachable == self.num_states:
            return self
        index = self.index()
        order = np.flatnonzero(reachable)  # ascending old state ids
        new_of_old = np.full(self.num_states, -1, dtype=np.int64)
        new_of_old[order] = np.arange(num_reachable, dtype=np.int64)

        interactive_csr = index.interactive_csr
        picked = gather_row_indices(interactive_csr.indptr, order)
        new_isrc = new_of_old[interactive_csr.source[picked]]
        new_iact = interactive_csr.action[picked]
        new_itgt = new_of_old[interactive_csr.target[picked]]
        markovian_csr = index.markovian_csr()
        picked = gather_row_indices(markovian_csr.indptr, order)
        new_msrc = new_of_old[markovian_csr.source[picked]]
        new_mrate = markovian_csr.rate[picked]
        new_mtgt = new_of_old[markovian_csr.target[picked]]
        labels = {
            int(new_of_old[old]): props
            for old, props in self.labels.items()
            if reachable[old]
        }
        names = (
            [self.state_name(old) for old in order.tolist()]
            if self.state_names
            else None
        )
        restricted = IOIMC.trusted(
            self.name,
            self.signature,
            num_reachable,
            int(new_of_old[self.initial]),
            None,  # rows materialise lazily from the index attached below
            None,
            labels,
            names,
        )
        restricted._index = index.derive(
            restricted,
            _interactive_csr_from_edges(new_isrc, new_iact, new_itgt, num_reachable),
            _markovian_csr_from_edges(new_msrc, new_mrate, new_mtgt, num_reachable),
        )
        return restricted

    def _reachable_mask(self):
        """Boolean mask of states reachable from the initial state.

        Batched BFS over the CSR adjacency: a whole frontier level is
        expanded per step, so the cost is a few array operations per level of
        the reachability tree instead of Python work per transition.
        """
        index = self.index()
        interactive_csr = index.interactive_csr
        markovian_csr = index.markovian_csr()
        seen = np.zeros(self.num_states, dtype=bool)
        seen[self.initial] = True
        frontier = np.array([self.initial], dtype=np.int64)
        while len(frontier):
            targets = np.concatenate(
                [
                    interactive_csr.target[
                        gather_row_indices(interactive_csr.indptr, frontier)
                    ],
                    markovian_csr.target[
                        gather_row_indices(markovian_csr.indptr, frontier)
                    ],
                ]
            ).astype(np.int64)
            targets = np.unique(targets)
            frontier = targets[~seen[targets]]
            seen[frontier] = True
        return seen

    def reachable_states(self) -> set[int]:
        """Set of states reachable from the initial state."""
        return set(np.flatnonzero(self._reachable_mask()).tolist())

    def renamed(self, name: str) -> "IOIMC":
        """Return a shallow copy carrying a different automaton name."""
        clone = IOIMC.trusted(
            name,
            self.signature,
            self.num_states,
            self.initial,
            self._interactive,
            self._markovian,
            self.labels,
            self.state_names,
        )
        if self._index is not None:
            clone._index = self._index.derive(
                clone, self._index.interactive_csr, self._index._markovian_csr
            )
        return clone

    # ------------------------------------------------------------------ #
    # pickling
    # ------------------------------------------------------------------ #
    # An automaton crosses process boundaries (the composer's worker pool)
    # in whichever of its two representations is authoritative: the Python
    # row tables when no index was ever built, or the flat CSR arrays when
    # one was.  Lazy caches (materialised rows, predecessor tables,
    # transition counts) are never serialised — they are cheap to rebuild
    # and would multiply the payload.  The lazy-row invariant survives by
    # construction: a CSR-path automaton unpickles with rows ``None`` and an
    # index whose Markovian CSR is explicit (materialised here if need be).

    def __getstate__(self) -> dict:
        state = {
            "name": self.name,
            "signature": self.signature,
            "num_states": self.num_states,
            "initial": self.initial,
            "labels": self.labels,
            "state_names": self.state_names,
        }
        index = self._index
        if index is None:
            state["interactive"] = self._interactive
            state["markovian"] = self._markovian
        else:
            icsr = index.interactive_csr
            mcsr = index.markovian_csr()
            state["interactive_csr"] = (icsr.indptr, icsr.source, icsr.action, icsr.target)
            state["markovian_csr"] = (mcsr.indptr, mcsr.source, mcsr.rate, mcsr.target)
        return state

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.signature = state["signature"]
        self.num_states = state["num_states"]
        self.initial = state["initial"]
        self.labels = state["labels"]
        self.state_names = state["state_names"]
        self._transition_counts = None
        if "interactive_csr" in state:
            from .indexed import InteractiveCSR, MarkovianCSR, TransitionIndex

            self._interactive = None
            self._markovian = None
            self._index = TransitionIndex.from_tables(
                self,
                InteractiveCSR(*state["interactive_csr"]),
                MarkovianCSR(*state["markovian_csr"]),
            )
        else:
            self._interactive = state["interactive"]
            self._markovian = state["markovian"]
            self._index = None

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IOIMC({self.name!r}, states={self.num_states}, "
            f"interactive={self.num_interactive_transitions()}, "
            f"markovian={self.num_markovian_transitions()})"
        )

    def summary(self) -> dict[str, int]:
        """Size statistics used by the benchmarks."""
        return {
            "states": self.num_states,
            "interactive_transitions": self.num_interactive_transitions(),
            "markovian_transitions": self.num_markovian_transitions(),
            "transitions": self.num_transitions(),
        }


def _interactive_csr_from_edges(source, action, target, num_rows: int):
    """Interactive CSR from aligned edge columns (``source`` sorted)."""
    from .indexed import InteractiveCSR

    indptr = csr_indptr(source, num_rows)
    return InteractiveCSR(
        indptr,
        source.astype(np.int32),
        action.astype(np.int32),
        target.astype(np.int32),
    )


def _markovian_csr_from_edges(source, rate, target, num_rows: int):
    """Markovian CSR from aligned edge columns (``source`` sorted)."""
    from .indexed import MarkovianCSR

    indptr = csr_indptr(source, num_rows)
    return MarkovianCSR(
        indptr, source.astype(np.int32), np.asarray(rate), target.astype(np.int32)
    )


def merge_label_sets(label_sets: Iterable[frozenset[str]]) -> frozenset[str]:
    """Union of several label sets (helper shared by composition and lumping)."""
    merged: set[str] = set()
    for labels in label_sets:
        merged.update(labels)
    return frozenset(merged)
