"""Core data structure for Input/Output Interactive Markov Chains.

An I/O-IMC (Section 2 of the paper) is a transition system with two kinds of
transitions:

* *interactive* transitions, labelled with an action name whose kind (input,
  output or internal) is determined by the automaton's :class:`Signature`;
* *Markovian* transitions, labelled with a rate ``lambda`` of an exponential
  delay.

States are represented as integers ``0 .. num_states - 1``; an optional list
of human readable state names can be attached for debugging and
visualisation.  Each state may additionally carry a set of atomic
propositions (*labels*) such as ``"down"`` — labels survive composition and
minimisation and are used to identify system-failure states when the final
model is converted into a labelled CTMC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import InputEnablednessError, ModelError
from .actions import ActionKind, Signature


@dataclass(frozen=True)
class InteractiveTransition:
    """One interactive transition ``source --action--> target``."""

    source: int
    action: str
    target: int


@dataclass(frozen=True)
class MarkovianTransition:
    """One Markovian transition ``source --rate--> target``."""

    source: int
    rate: float
    target: int


class IOIMC:
    """An Input/Output Interactive Markov Chain.

    Parameters
    ----------
    name:
        Human readable name of the automaton (used in diagnostics only).
    signature:
        Partition of the action names into inputs, outputs and internals.
    num_states:
        Number of states; states are the integers ``0 .. num_states - 1``.
    initial:
        Index of the initial state.
    interactive:
        For every state, a list of ``(action, target)`` pairs.
    markovian:
        For every state, a list of ``(rate, target)`` pairs.
    labels:
        Optional mapping from state index to a set of atomic propositions.
    state_names:
        Optional human readable state names (one per state).
    """

    __slots__ = (
        "name",
        "signature",
        "num_states",
        "initial",
        "interactive",
        "markovian",
        "labels",
        "state_names",
        "_index",
        "_transition_counts",
    )

    def __init__(
        self,
        name: str,
        signature: Signature,
        num_states: int,
        initial: int,
        interactive: Sequence[Sequence[tuple[str, int]]],
        markovian: Sequence[Sequence[tuple[float, int]]],
        labels: Mapping[int, frozenset[str]] | None = None,
        state_names: Sequence[str] | None = None,
    ) -> None:
        if num_states <= 0:
            raise ModelError("an I/O-IMC needs at least one state")
        if not 0 <= initial < num_states:
            raise ModelError(f"initial state {initial} out of range 0..{num_states - 1}")
        if len(interactive) != num_states or len(markovian) != num_states:
            raise ModelError("transition tables must have exactly one entry per state")
        self.name = name
        self.signature = signature
        self.num_states = num_states
        self.initial = initial
        self.interactive: list[list[tuple[str, int]]] = [list(row) for row in interactive]
        self.markovian: list[list[tuple[float, int]]] = [list(row) for row in markovian]
        self.labels: dict[int, frozenset[str]] = {
            state: frozenset(props) for state, props in (labels or {}).items() if props
        }
        self.state_names = list(state_names) if state_names is not None else None
        self._index = None
        self._transition_counts = None
        self._validate()

    @classmethod
    def trusted(
        cls,
        name: str,
        signature: Signature,
        num_states: int,
        initial: int,
        interactive: list[list[tuple[str, int]]],
        markovian: list[list[tuple[float, int]]],
        labels: Mapping[int, frozenset[str]] | None = None,
        state_names: list[str] | None = None,
    ) -> "IOIMC":
        """Construct without validation or defensive copies (internal use only).

        The library's own transformations (composition, hiding, reductions,
        quotients) produce transition tables that are valid by construction;
        re-validating and re-copying them accounted for a measurable share of
        the composition pipeline's runtime.  Callers hand over ownership of
        ``interactive``/``markovian``/``state_names`` and must guarantee every
        invariant that ``__init__`` checks.
        """
        self = cls.__new__(cls)
        self.name = name
        self.signature = signature
        self.num_states = num_states
        self.initial = initial
        self.interactive = interactive
        self.markovian = markovian
        self.labels = {
            state: props for state, props in (labels or {}).items() if props
        }
        self.state_names = state_names
        self._index = None
        self._transition_counts = None
        return self

    def index(self):
        """The cached :class:`~repro.ioimc.indexed.TransitionIndex` of this automaton."""
        if self._index is None:
            from .indexed import TransitionIndex

            self._index = TransitionIndex(self)
        return self._index

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        known = self.signature.all_actions
        for state, row in enumerate(self.interactive):
            for action, target in row:
                if action not in known:
                    raise ModelError(
                        f"{self.name}: state {state} uses action {action!r} "
                        "which is not declared in the signature"
                    )
                if not 0 <= target < self.num_states:
                    raise ModelError(f"{self.name}: interactive target {target} out of range")
        for state, row in enumerate(self.markovian):
            for rate, target in row:
                if rate <= 0:
                    raise ModelError(
                        f"{self.name}: state {state} has a non-positive Markovian rate {rate}"
                    )
                if not 0 <= target < self.num_states:
                    raise ModelError(f"{self.name}: Markovian target {target} out of range")
        for state in self.labels:
            if not 0 <= state < self.num_states:
                raise ModelError(f"{self.name}: label attached to unknown state {state}")
        if self.state_names is not None and len(self.state_names) != self.num_states:
            raise ModelError(f"{self.name}: need exactly one state name per state")

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def states(self) -> range:
        """Iterate over all state indices."""
        return range(self.num_states)

    def state_name(self, state: int) -> str:
        """Human readable name of ``state`` (falls back to the index)."""
        if self.state_names is not None:
            return self.state_names[state]
        return f"s{state}"

    def label_of(self, state: int) -> frozenset[str]:
        """Atomic propositions attached to ``state``."""
        return self.labels.get(state, frozenset())

    def kind_of(self, action: str) -> ActionKind:
        """Kind of ``action`` in this automaton's signature."""
        return self.signature.kind_of(action)

    def interactive_successors(self, state: int, action: str) -> list[int]:
        """Targets of all ``action`` transitions leaving ``state``."""
        return [target for act, target in self.interactive[state] if act == action]

    def enabled_actions(self, state: int) -> set[str]:
        """All actions with at least one transition leaving ``state``."""
        return {action for action, _ in self.interactive[state]}

    def enabled_urgent_actions(self, state: int) -> set[str]:
        """Output and internal actions enabled in ``state`` (cannot be delayed)."""
        urgent = set()
        for action, _ in self.interactive[state]:
            if self.signature.kind_of(action) is not ActionKind.INPUT:
                urgent.add(action)
        return urgent

    def is_stable(self, state: int) -> bool:
        """A state is *stable* when no output or internal transition is enabled.

        Only stable states may let time pass (maximal progress assumption);
        Markovian transitions are therefore only meaningful in stable states.
        """
        return not self.enabled_urgent_actions(state)

    def exit_rate(self, state: int) -> float:
        """Sum of the Markovian rates leaving ``state``."""
        return sum(rate for rate, _ in self.markovian[state])

    def num_interactive_transitions(self) -> int:
        """Total number of interactive transitions."""
        return self._counts()[0]

    def num_markovian_transitions(self) -> int:
        """Total number of Markovian transitions."""
        return self._counts()[1]

    def _counts(self) -> tuple[int, int]:
        if self._transition_counts is None:
            self._transition_counts = (
                sum(len(row) for row in self.interactive),
                sum(len(row) for row in self.markovian),
            )
        return self._transition_counts

    def num_transitions(self) -> int:
        """Total number of transitions of either kind."""
        return self.num_interactive_transitions() + self.num_markovian_transitions()

    def iter_interactive(self) -> Iterator[InteractiveTransition]:
        """Iterate over all interactive transitions."""
        for source, row in enumerate(self.interactive):
            for action, target in row:
                yield InteractiveTransition(source, action, target)

    def iter_markovian(self) -> Iterator[MarkovianTransition]:
        """Iterate over all Markovian transitions."""
        for source, row in enumerate(self.markovian):
            for rate, target in row:
                yield MarkovianTransition(source, rate, target)

    # ------------------------------------------------------------------ #
    # input enabledness
    # ------------------------------------------------------------------ #
    def missing_inputs(self, state: int) -> set[str]:
        """Input actions for which ``state`` has no explicit transition."""
        return set(self.signature.inputs) - self.enabled_actions(state)

    def check_input_enabled(self) -> None:
        """Raise :class:`InputEnablednessError` unless every state accepts every input."""
        for state in self.states():
            missing = self.missing_inputs(state)
            if missing:
                raise InputEnablednessError(
                    f"{self.name}: state {self.state_name(state)} has no transition "
                    f"for input action(s) {sorted(missing)}"
                )

    def ensure_input_enabled(self) -> "IOIMC":
        """Return an equivalent I/O-IMC with explicit input self-loops added.

        The paper omits these self-loops in figures "for the sake of clarity";
        semantically a state without an explicit ``a?`` transition simply stays
        put when ``a`` occurs.  This helper materialises that convention.
        """
        inputs = self.signature.inputs
        if not inputs:
            return self
        interactive: list[list[tuple[str, int]]] = []
        changed = False
        for state, row in enumerate(self.interactive):
            missing = inputs - {action for action, _ in row}
            if missing:
                interactive.append(list(row) + [(action, state) for action in missing])
                changed = True
            else:
                interactive.append(row)
        if not changed:
            return self
        return IOIMC.trusted(
            self.name,
            self.signature,
            self.num_states,
            self.initial,
            interactive,
            self.markovian,
            self.labels,
            self.state_names,
        )

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def relabel_states(self, mapping: Mapping[int, int], num_new_states: int) -> "IOIMC":
        """Quotient/rename states according to ``mapping`` (old -> new index).

        Interactive transitions of all merged states are unioned (duplicates
        are dropped).  Markovian rates are taken from a single *representative*
        state per block, with parallel rates into the same target block summed
        — this is the quotient construction used by (bi)simulation lumping,
        where all states of a block have, by definition, the same cumulative
        rate into every other block.
        """
        interactive: list[set[tuple[str, int]]] = [set() for _ in range(num_new_states)]
        markovian: list[dict[int, float] | None] = [None] * num_new_states
        labels: dict[int, set[str]] = {}
        names: list[str | None] = [None] * num_new_states
        for old in self.states():
            new = mapping[old]
            for action, target in self.interactive[old]:
                interactive[new].add((action, mapping[target]))
            props = self.label_of(old)
            if props:
                labels.setdefault(new, set()).update(props)
            if names[new] is None:
                names[new] = self.state_name(old)
            if markovian[new] is None:
                rates: dict[int, float] = {}
                for rate, target in self.markovian[old]:
                    new_target = mapping[target]
                    rates[new_target] = rates.get(new_target, 0.0) + rate
                markovian[new] = rates
        markovian_rows = [
            [(rate, target) for target, rate in sorted((row or {}).items())]
            for row in markovian
        ]
        return IOIMC.trusted(
            self.name,
            self.signature,
            num_new_states,
            mapping[self.initial],
            [sorted(row) for row in interactive],
            markovian_rows,
            {state: frozenset(props) for state, props in labels.items()},
            [name or f"s{index}" for index, name in enumerate(names)],
        )

    def restrict_to_reachable(self) -> "IOIMC":
        """Drop states that are unreachable from the initial state."""
        reachable = self.reachable_states()
        if len(reachable) == self.num_states:
            return self
        order = sorted(reachable)
        new_index = {old: new for new, old in enumerate(order)}
        interactive = [
            [(action, new_index[target]) for action, target in self.interactive[old]]
            for old in order
        ]
        markovian = [
            [(rate, new_index[target]) for rate, target in self.markovian[old]]
            for old in order
        ]
        labels = {new_index[old]: self.label_of(old) for old in order if self.label_of(old)}
        names = [self.state_name(old) for old in order] if self.state_names else None
        return IOIMC.trusted(
            self.name,
            self.signature,
            len(order),
            new_index[self.initial],
            interactive,
            markovian,
            labels,
            names,
        )

    def reachable_states(self) -> set[int]:
        """Set of states reachable from the initial state."""
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            for _, target in self.interactive[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
            for _, target in self.markovian[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def renamed(self, name: str) -> "IOIMC":
        """Return a shallow copy carrying a different automaton name."""
        return IOIMC.trusted(
            name,
            self.signature,
            self.num_states,
            self.initial,
            self.interactive,
            self.markovian,
            self.labels,
            self.state_names,
        )

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IOIMC({self.name!r}, states={self.num_states}, "
            f"interactive={self.num_interactive_transitions()}, "
            f"markovian={self.num_markovian_transitions()})"
        )

    def summary(self) -> dict[str, int]:
        """Size statistics used by the benchmarks."""
        return {
            "states": self.num_states,
            "interactive_transitions": self.num_interactive_transitions(),
            "markovian_transitions": self.num_markovian_transitions(),
            "transitions": self.num_transitions(),
        }


def merge_label_sets(label_sets: Iterable[frozenset[str]]) -> frozenset[str]:
    """Union of several label sets (helper shared by composition and lumping)."""
    merged: set[str] = set()
    for labels in label_sets:
        merged.update(labels)
    return frozenset(merged)
