"""Export helpers for I/O-IMCs (Graphviz dot and plain-text listings).

These helpers are not needed for any numerical result; they exist so that the
building-block models of the paper's Figures 1-9 can be inspected and
compared against the paper by eye.
"""

from __future__ import annotations

from .actions import ActionKind
from .ioimc import IOIMC


def to_dot(automaton: IOIMC) -> str:
    """Render an I/O-IMC in Graphviz dot syntax.

    Markovian transitions are drawn dashed, interactive transitions solid,
    following the drawing convention of the paper (Figure 1).
    """
    lines = [f'digraph "{automaton.name}" {{', "  rankdir=LR;"]
    lines.append('  __init [shape=point, label=""];')
    lines.append(f"  __init -> s{automaton.initial};")
    for state in automaton.states():
        labels = automaton.label_of(state)
        label = automaton.state_name(state)
        if labels:
            label += "\\n{" + ",".join(sorted(labels)) + "}"
        lines.append(f'  s{state} [shape=circle, label="{label}"];')
    for transition in automaton.iter_interactive():
        kind = automaton.kind_of(transition.action)
        decorated = kind.decorate(transition.action)
        lines.append(
            f'  s{transition.source} -> s{transition.target} [label="{decorated}"];'
        )
    for transition in automaton.iter_markovian():
        lines.append(
            f"  s{transition.source} -> s{transition.target} "
            f'[label="{transition.rate:g}", style=dashed];'
        )
    lines.append("}")
    return "\n".join(lines)


def to_text(automaton: IOIMC, *, include_input_self_loops: bool = False) -> str:
    """Plain text listing of the automaton (one transition per line)."""
    lines = [
        f"I/O-IMC {automaton.name}",
        f"  states: {automaton.num_states}, initial: {automaton.state_name(automaton.initial)}",
        f"  inputs:    {sorted(automaton.signature.inputs)}",
        f"  outputs:   {sorted(automaton.signature.outputs)}",
        f"  internals: {sorted(automaton.signature.internals)}",
    ]
    for state in automaton.states():
        labels = automaton.label_of(state)
        suffix = f"  {{{', '.join(sorted(labels))}}}" if labels else ""
        lines.append(f"  state {automaton.state_name(state)}{suffix}")
        for action, target in automaton.interactive[state]:
            kind = automaton.kind_of(action)
            if (
                not include_input_self_loops
                and kind is ActionKind.INPUT
                and target == state
            ):
                continue
            lines.append(
                f"    --{kind.decorate(action)}--> {automaton.state_name(target)}"
            )
        for rate, target in automaton.markovian[state]:
            lines.append(f"    --rate {rate:g}--> {automaton.state_name(target)}")
    return "\n".join(lines)


__all__ = ["to_dot", "to_text"]
