"""Interned-action, integer-indexed view of an I/O-IMC.

The refinement and reduction algorithms spend most of their time asking the
same questions about an automaton over and over: what kind is this action,
which internal transitions leave this state, is this state stable, who are a
state's predecessors.  Answering them through the string-keyed
:class:`~repro.ioimc.actions.Signature` (frozenset membership per query) is
what made the seed implementation quadratic in practice.

:class:`TransitionIndex` answers them in O(1) array lookups instead:

* action names are *interned* to consecutive integer ids (sorted order, so
  ids are deterministic for a given signature);
* per-state adjacency lists carry ``(action_id, target)`` pairs aligned with
  the automaton's transition order, plus sorted copies for algorithms that
  want binary-searchable adjacency;
* internal (tau) successor lists, a stability bit per state and cached
  predecessor lists are precomputed once.

An index is built lazily by :meth:`repro.ioimc.IOIMC.index` and cached on the
automaton; I/O-IMCs are immutable after construction, so the cache can never
go stale.
"""

from __future__ import annotations

from .actions import ActionKind


class TransitionIndex:
    """Integer-indexed transition tables of one (immutable) I/O-IMC."""

    __slots__ = (
        "automaton",
        "actions",
        "id_of",
        "kinds",
        "is_input",
        "is_internal",
        "is_visible",
        "internal_successors",
        "stable",
        "_interactive_ids",
        "_sorted_interactive",
        "_predecessors",
    )

    def __init__(self, automaton) -> None:
        self.automaton = automaton
        signature = automaton.signature
        #: Interned action names; the id of an action is its position here.
        self.actions: list[str] = sorted(signature.all_actions)
        self.id_of: dict[str, int] = {
            action: aid for aid, action in enumerate(self.actions)
        }
        self.kinds: list[ActionKind] = [
            signature.kind_of(action) for action in self.actions
        ]
        self.is_input: list[bool] = [k is ActionKind.INPUT for k in self.kinds]
        self.is_internal: list[bool] = [k is ActionKind.INTERNAL for k in self.kinds]
        self.is_visible: list[bool] = [
            k is not ActionKind.INTERNAL for k in self.kinds
        ]

        internals = signature.internals
        inputs = signature.inputs
        #: Per state: targets of internal (tau) transitions.
        self.internal_successors: list[list[int]] = []
        #: Per state: ``True`` when no output or internal transition is enabled.
        self.stable: list[bool] = []
        internal_successors = self.internal_successors
        stable_flags = self.stable
        for row in automaton.interactive:
            internal: list[int] = []
            stable = True
            for action, target in row:
                if action in internals:
                    internal.append(target)
                    stable = False
                elif action not in inputs:
                    stable = False
            internal_successors.append(internal)
            stable_flags.append(stable)
        self._interactive_ids: list[list[tuple[int, int]]] | None = None
        self._sorted_interactive: list[list[tuple[int, int]]] | None = None
        self._predecessors: list[list[int]] | None = None

    def adopt(self, automaton) -> "TransitionIndex":
        """Re-attach this index to an automaton with the *same* interactive table.

        Used by transformations that only touch Markovian rows (e.g. the
        maximal-progress cut): every interactive-derived table can be shared,
        only the predecessor cache has to be rebuilt on demand.
        """
        clone = TransitionIndex.__new__(TransitionIndex)
        clone.automaton = automaton
        clone.actions = self.actions
        clone.id_of = self.id_of
        clone.kinds = self.kinds
        clone.is_input = self.is_input
        clone.is_internal = self.is_internal
        clone.is_visible = self.is_visible
        clone.internal_successors = self.internal_successors
        clone.stable = self.stable
        clone._interactive_ids = self._interactive_ids
        clone._sorted_interactive = self._sorted_interactive
        clone._predecessors = None
        return clone

    # ------------------------------------------------------------------ #
    # derived, lazily cached tables
    # ------------------------------------------------------------------ #
    def interactive_ids(self) -> list[list[tuple[int, int]]]:
        """Per-state ``(action_id, target)`` pairs in the automaton's order."""
        if self._interactive_ids is None:
            id_of = self.id_of
            self._interactive_ids = [
                [(id_of[action], target) for action, target in row]
                for row in self.automaton.interactive
            ]
        return self._interactive_ids

    def sorted_interactive(self) -> list[list[tuple[int, int]]]:
        """Per-state adjacency sorted by ``(action_id, target)``."""
        if self._sorted_interactive is None:
            self._sorted_interactive = [sorted(row) for row in self.interactive_ids()]
        return self._sorted_interactive

    def predecessors(self) -> list[list[int]]:
        """For every state, the (deduplicated) sources of incoming transitions.

        Both interactive and Markovian transitions count: any predecessor's
        refinement signature reads the block of this state, so this is exactly
        the *observer* relation the worklist refinement engine needs.
        """
        if self._predecessors is None:
            automaton = self.automaton
            seen: list[set[int]] = [set() for _ in range(automaton.num_states)]
            for source, row in enumerate(automaton.interactive):
                for _, target in row:
                    seen[target].add(source)
            for source, row in enumerate(automaton.markovian):
                for _, target in row:
                    seen[target].add(source)
            self._predecessors = [sorted(sources) for sources in seen]
        return self._predecessors

    def tau_closure(self) -> list[list[int]]:
        """For every state, the sorted list of states reachable by ``tau*``."""
        internal_successors = self.internal_successors
        closure: list[list[int]] = []
        for state in range(self.automaton.num_states):
            reached = {state}
            stack = [state]
            while stack:
                current = stack.pop()
                for successor in internal_successors[current]:
                    if successor not in reached:
                        reached.add(successor)
                        stack.append(successor)
            closure.append(sorted(reached))
        return closure

    def summary(self) -> dict[str, int]:
        """Size statistics (mirrors :meth:`repro.ioimc.IOIMC.summary`)."""
        return self.automaton.summary()


__all__ = ["TransitionIndex"]
