"""Interned-action, integer-indexed CSR view of an I/O-IMC.

The refinement and reduction algorithms spend most of their time asking the
same questions about an automaton over and over: what kind is this action,
which internal transitions leave this state, is this state stable, who are a
state's predecessors.  Answering them through the string-keyed
:class:`~repro.ioimc.actions.Signature` (frozenset membership per query) is
what made the seed implementation quadratic in practice.

:class:`TransitionIndex` answers them in O(1) array lookups instead, and it
is the bridge between the Python-object transition tables of
:class:`~repro.ioimc.IOIMC` and the vectorised (numpy) engines of
:mod:`repro.lumping.refinement` and :mod:`repro.ioimc.composition`:

* action names are *interned* to consecutive integer ids (sorted order, so
  ids are deterministic for a given signature);
* the interactive relation is stored as a flat **CSR adjacency**
  (:class:`InteractiveCSR`): an ``int64`` row-offset array plus aligned
  ``int32`` source/action/target columns in the automaton's transition
  order — the layout the ``np.unique``-based signature grouping and the
  batched product construction operate on directly;
* the Markovian relation is stored the same way (:class:`MarkovianCSR`,
  ``float64`` rate column);
* internal (tau) successor lists, a stability bit per state and cached
  predecessor tables are derived from the arrays once and cached.

Legacy list-of-tuples views (:meth:`TransitionIndex.interactive_ids`,
:meth:`TransitionIndex.predecessors`, ...) are kept for algorithms and tests
that still walk adjacency in Python; they are materialised lazily from the
CSR arrays and are guaranteed to describe exactly the same transitions (see
``tests/test_csr_backend.py`` for the round-trip property tests).

An index is built lazily by :meth:`repro.ioimc.IOIMC.index` and cached on the
automaton; I/O-IMCs are immutable after construction, so the cache can never
go stale.
"""

from __future__ import annotations

import numpy as np

from ..nputil import csr_indptr
from .actions import ActionKind


class InteractiveCSR:
    """Flat-array (CSR) form of an automaton's interactive relation.

    The edges of state ``s`` occupy positions ``indptr[s]:indptr[s + 1]`` of
    the aligned columns, in the automaton's transition order:

    ``indptr``
        ``int64`` row offsets, length ``num_states + 1``.
    ``source``
        ``int32`` source state per edge (the CSR expansion of ``indptr``,
        stored because every vectorised consumer needs it).
    ``action``
        ``int32`` interned action id per edge.
    ``target``
        ``int32`` target state per edge.
    """

    __slots__ = ("indptr", "source", "action", "target")

    def __init__(
        self,
        indptr: np.ndarray,
        source: np.ndarray,
        action: np.ndarray,
        target: np.ndarray,
    ) -> None:
        self.indptr = indptr
        self.source = source
        self.action = action
        self.target = target

    @property
    def num_edges(self) -> int:
        return len(self.target)


class MarkovianCSR:
    """Flat-array (CSR) form of an automaton's Markovian relation.

    Same layout as :class:`InteractiveCSR` with a ``float64`` ``rate`` column
    instead of the action column.
    """

    __slots__ = ("indptr", "source", "rate", "target")

    def __init__(
        self,
        indptr: np.ndarray,
        source: np.ndarray,
        rate: np.ndarray,
        target: np.ndarray,
    ) -> None:
        self.indptr = indptr
        self.source = source
        self.rate = rate
        self.target = target

    @property
    def num_edges(self) -> int:
        return len(self.target)


def _row_offsets(rows, num_states: int) -> tuple[np.ndarray, np.ndarray, int]:
    """(indptr, per-edge source column, edge count) of a list-of-rows table."""
    counts = np.fromiter((len(row) for row in rows), dtype=np.int64, count=num_states)
    indptr = np.zeros(num_states + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    source = np.repeat(np.arange(num_states, dtype=np.int32), counts)
    return indptr, source, total


class TransitionIndex:
    """Integer-indexed transition tables of one (immutable) I/O-IMC."""

    __slots__ = (
        "automaton",
        "actions",
        "id_of",
        "kinds",
        "is_input",
        "is_internal",
        "is_visible",
        "input_flags",
        "internal_flags",
        "visible_flags",
        "interactive_csr",
        "stable",
        "stable_flags",
        "_internal_successors",
        "_markovian_csr",
        "_interactive_ids",
        "_sorted_interactive",
        "_predecessors",
        "_predecessor_csr",
    )

    def __init__(self, automaton) -> None:
        self.automaton = automaton
        signature = automaton.signature
        #: Interned action names; the id of an action is its position here.
        self.actions: list[str] = sorted(signature.all_actions)
        self.id_of: dict[str, int] = {
            action: aid for aid, action in enumerate(self.actions)
        }
        self.kinds: list[ActionKind] = [
            signature.kind_of(action) for action in self.actions
        ]
        #: Per-action-id kind masks, as Python lists and numpy bool arrays.
        self._attach_kind_flags()

        #: Flat CSR adjacency of the interactive relation (built eagerly: every
        #: consumer of the index reads it).  The Markovian CSR — and the
        #: legacy list-of-tuples views — are materialised lazily.
        num_states = automaton.num_states
        rows = automaton.interactive
        indptr, source, total = _row_offsets(rows, num_states)
        id_of = self.id_of
        action = np.fromiter(
            (id_of[act] for row in rows for act, _ in row), dtype=np.int32, count=total
        )
        target = np.fromiter(
            (tgt for row in rows for _, tgt in row), dtype=np.int32, count=total
        )
        self._attach_tables(InteractiveCSR(indptr, source, action, target), None)

    @classmethod
    def from_tables(
        cls, automaton, interactive_csr: InteractiveCSR, markovian_csr: MarkovianCSR
    ) -> "TransitionIndex":
        """Build an index directly from prebuilt CSR tables.

        Used by transformations that construct an automaton *from* flat
        arrays (batched composition, quotienting, reachability restriction):
        re-deriving the CSR form from the freshly materialised Python rows
        would just redo work.  The caller guarantees that the action ids of
        ``interactive_csr`` index ``sorted(signature.all_actions)``.
        """
        self = cls.__new__(cls)
        self.automaton = automaton
        signature = automaton.signature
        self.actions = sorted(signature.all_actions)
        self.id_of = {action: aid for aid, action in enumerate(self.actions)}
        self.kinds = [signature.kind_of(action) for action in self.actions]
        self._attach_kind_flags()
        self._attach_tables(interactive_csr, markovian_csr)
        return self

    def derive(
        self, automaton, interactive_csr: InteractiveCSR, markovian_csr: MarkovianCSR
    ) -> "TransitionIndex":
        """Index of ``automaton`` (same action universe) over new CSR tables.

        Shares every interning table with ``self``; only the per-state
        derived data (stability bits, lazy caches) is rebuilt.  The caller
        guarantees ``automaton.signature`` interns actions identically.
        """
        clone = TransitionIndex.__new__(TransitionIndex)
        clone.automaton = automaton
        clone.actions = self.actions
        clone.id_of = self.id_of
        clone.kinds = self.kinds
        clone.is_input = self.is_input
        clone.is_internal = self.is_internal
        clone.is_visible = self.is_visible
        clone.input_flags = self.input_flags
        clone.internal_flags = self.internal_flags
        clone.visible_flags = self.visible_flags
        clone._attach_tables(interactive_csr, markovian_csr)
        return clone

    def with_renamed_actions(self, automaton, rename: dict) -> "TransitionIndex":
        """Index of ``automaton``, whose actions are ``self``'s renamed.

        ``rename`` maps old action names to new ones (non-injective renames,
        e.g. hiding several outputs to ``tau``, are fine); unnamed actions
        keep their name.  The transition structure is untouched, so the
        row-offset/source/target columns — and the structural predecessor
        caches — are shared; only the action column is remapped.
        """
        signature = automaton.signature
        clone = TransitionIndex.__new__(TransitionIndex)
        clone.automaton = automaton
        clone.actions = sorted(signature.all_actions)
        clone.id_of = {action: aid for aid, action in enumerate(clone.actions)}
        clone.kinds = [signature.kind_of(action) for action in clone.actions]
        clone._attach_kind_flags()
        remap = np.fromiter(
            (clone.id_of[rename.get(action, action)] for action in self.actions),
            dtype=np.int32,
            count=len(self.actions),
        )
        old = self.interactive_csr
        clone.interactive_csr = InteractiveCSR(
            old.indptr, old.source, remap[old.action], old.target
        )
        clone._compute_stability()
        clone._internal_successors = None
        clone._markovian_csr = self._markovian_csr
        clone._interactive_ids = None
        clone._sorted_interactive = None
        clone._predecessors = self._predecessors
        clone._predecessor_csr = self._predecessor_csr
        return clone

    def _attach_kind_flags(self) -> None:
        self.is_input = [k is ActionKind.INPUT for k in self.kinds]
        self.is_internal = [k is ActionKind.INTERNAL for k in self.kinds]
        self.is_visible = [k is not ActionKind.INTERNAL for k in self.kinds]
        self.input_flags = np.array(self.is_input, dtype=bool)
        self.internal_flags = np.array(self.is_internal, dtype=bool)
        self.visible_flags = np.array(self.is_visible, dtype=bool)

    def _attach_tables(
        self,
        interactive_csr: InteractiveCSR,
        markovian_csr: MarkovianCSR | None,
    ) -> None:
        self.interactive_csr = interactive_csr
        self._compute_stability()
        self._internal_successors = None
        self._markovian_csr = markovian_csr
        self._interactive_ids = None
        self._sorted_interactive = None
        self._predecessors = None
        self._predecessor_csr = None

    def _compute_stability(self) -> None:
        csr = self.interactive_csr
        urgent = ~self.input_flags[csr.action]
        unstable = np.zeros(self.automaton.num_states, dtype=bool)
        unstable[csr.source[urgent]] = True
        self.stable_flags = ~unstable
        self.stable = self.stable_flags.tolist()

    def adopt(self, automaton, markovian_csr: MarkovianCSR | None = None) -> "TransitionIndex":
        """Re-attach this index to an automaton with the *same* interactive table.

        Used by transformations that only touch Markovian rows (e.g. the
        maximal-progress cut): every interactive-derived table can be shared,
        only the Markovian CSR (passed explicitly, or rebuilt from the rows on
        demand) and the predecessor caches change.
        """
        clone = TransitionIndex.__new__(TransitionIndex)
        clone.automaton = automaton
        clone.actions = self.actions
        clone.id_of = self.id_of
        clone.kinds = self.kinds
        clone.is_input = self.is_input
        clone.is_internal = self.is_internal
        clone.is_visible = self.is_visible
        clone.input_flags = self.input_flags
        clone.internal_flags = self.internal_flags
        clone.visible_flags = self.visible_flags
        clone.interactive_csr = self.interactive_csr
        clone.stable = self.stable
        clone.stable_flags = self.stable_flags
        clone._internal_successors = self._internal_successors
        clone._markovian_csr = markovian_csr
        clone._interactive_ids = self._interactive_ids
        clone._sorted_interactive = self._sorted_interactive
        clone._predecessors = None
        clone._predecessor_csr = None
        return clone

    # ------------------------------------------------------------------ #
    # derived, lazily cached tables
    # ------------------------------------------------------------------ #
    def markovian_csr(self) -> MarkovianCSR:
        """Flat CSR adjacency of the Markovian relation."""
        if self._markovian_csr is None:
            automaton = self.automaton
            rows = automaton.markovian
            indptr, source, total = _row_offsets(rows, automaton.num_states)
            rate = np.fromiter(
                (r for row in rows for r, _ in row), dtype=np.float64, count=total
            )
            target = np.fromiter(
                (tgt for row in rows for _, tgt in row), dtype=np.int32, count=total
            )
            self._markovian_csr = MarkovianCSR(indptr, source, rate, target)
        return self._markovian_csr

    @property
    def internal_successors(self) -> list[list[int]]:
        """Per state: targets of internal (tau) transitions."""
        if self._internal_successors is None:
            csr = self.interactive_csr
            internal = self.internal_flags[csr.action]
            successors: list[list[int]] = [
                [] for _ in range(self.automaton.num_states)
            ]
            for source, tgt in zip(
                csr.source[internal].tolist(), csr.target[internal].tolist()
            ):
                successors[source].append(tgt)
            self._internal_successors = successors
        return self._internal_successors

    def interactive_ids(self) -> list[list[tuple[int, int]]]:
        """Per-state ``(action_id, target)`` pairs in the automaton's order."""
        if self._interactive_ids is None:
            csr = self.interactive_csr
            indptr = csr.indptr
            pairs = list(zip(csr.action.tolist(), csr.target.tolist()))
            self._interactive_ids = [
                pairs[indptr[state] : indptr[state + 1]]
                for state in range(self.automaton.num_states)
            ]
        return self._interactive_ids

    def sorted_interactive(self) -> list[list[tuple[int, int]]]:
        """Per-state adjacency sorted by ``(action_id, target)``."""
        if self._sorted_interactive is None:
            self._sorted_interactive = [sorted(row) for row in self.interactive_ids()]
        return self._sorted_interactive

    def predecessor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, source)`` CSR of the *observer* relation, deduplicated.

        For every state, the sources of incoming transitions of either kind:
        any predecessor's refinement signature reads the block of this state,
        so this is exactly the observer relation the worklist refinement
        engine needs.  Sources of a state are sorted ascending.
        """
        if self._predecessor_csr is None:
            icsr = self.interactive_csr
            mcsr = self.markovian_csr()
            num_states = self.automaton.num_states
            target = np.concatenate([icsr.target, mcsr.target])
            source = np.concatenate([icsr.source, mcsr.source])
            # Dedupe (target, source) pairs, then split runs by target.
            code = target.astype(np.int64) * num_states + source
            code = np.unique(code)
            by_target, sources = np.divmod(code, num_states)
            indptr = csr_indptr(by_target, num_states)
            self._predecessor_csr = (indptr, sources.astype(np.int32))
        return self._predecessor_csr

    def predecessors(self) -> list[list[int]]:
        """For every state, the (deduplicated, sorted) incoming-edge sources."""
        if self._predecessors is None:
            indptr, sources = self.predecessor_csr()
            flat = sources.tolist()
            self._predecessors = [
                flat[indptr[state] : indptr[state + 1]]
                for state in range(self.automaton.num_states)
            ]
        return self._predecessors

    def tau_closure(self) -> list[list[int]]:
        """For every state, the sorted list of states reachable by ``tau*``."""
        internal_successors = self.internal_successors
        closure: list[list[int]] = []
        for state in range(self.automaton.num_states):
            reached = {state}
            stack = [state]
            while stack:
                current = stack.pop()
                for successor in internal_successors[current]:
                    if successor not in reached:
                        reached.add(successor)
                        stack.append(successor)
            closure.append(sorted(reached))
        return closure

    def summary(self) -> dict[str, int]:
        """Size statistics (mirrors :meth:`repro.ioimc.IOIMC.summary`)."""
        return self.automaton.summary()

    def __reduce__(self):
        # A standalone pickle of an index rides on its automaton: the
        # automaton serialises its authoritative tables (see
        # ``IOIMC.__getstate__``) and ``index()`` reattaches an equivalent
        # index on the other side — keeping the automaton<->index backref a
        # single shared pair instead of two disconnected copies.
        return (_index_of, (self.automaton,))


def _index_of(automaton) -> TransitionIndex:
    """Unpickling helper: the (possibly freshly rebuilt) index of an automaton."""
    return automaton.index()


__all__ = ["InteractiveCSR", "MarkovianCSR", "TransitionIndex"]
