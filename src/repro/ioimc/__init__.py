"""Input/Output Interactive Markov Chains: the semantic substrate of Arcade.

This package provides the I/O-IMC formalism of Section 2 of the paper:

* :class:`~repro.ioimc.ioimc.IOIMC` — the transition-system data structure,
* :class:`~repro.ioimc.actions.Signature` — input/output/internal action sets,
* :func:`~repro.ioimc.composition.compose` — the parallel composition ``||``,
* :func:`~repro.ioimc.hiding.hide` — the hiding operator,
* :class:`~repro.ioimc.builder.IOIMCBuilder` — a named-state construction aid,
* :class:`~repro.ioimc.indexed.TransitionIndex` — the interned-action CSR
  view (flat numpy adjacency arrays) the vectorised composition and
  refinement/reduction engines operate on, with
  :class:`~repro.ioimc.indexed.InteractiveCSR` /
  :class:`~repro.ioimc.indexed.MarkovianCSR` as the raw table layout.
"""

from .actions import TAU, ActionKind, Signature
from .builder import IOIMCBuilder
from .canonical import CanonicalForm, canonical_form, rebase_actions, renaming_witness
from .composition import compose, compose_many
from .hiding import hide, hide_all_outputs
from .indexed import InteractiveCSR, MarkovianCSR, TransitionIndex
from .ioimc import InteractiveTransition, IOIMC, MarkovianTransition
from .visualization import to_dot, to_text

__all__ = [
    "TAU",
    "ActionKind",
    "Signature",
    "CanonicalForm",
    "canonical_form",
    "rebase_actions",
    "renaming_witness",
    "IOIMC",
    "IOIMCBuilder",
    "InteractiveCSR",
    "MarkovianCSR",
    "TransitionIndex",
    "InteractiveTransition",
    "MarkovianTransition",
    "compose",
    "compose_many",
    "hide",
    "hide_all_outputs",
    "to_dot",
    "to_text",
]
