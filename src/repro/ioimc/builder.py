"""Convenience builder for constructing I/O-IMCs with named states.

The semantic translation of Arcade building blocks (Section 3 of the paper)
is far easier to write — and to review against the paper's figures — when
states can be referred to by descriptive names such as ``"UP"`` or
``"DOWN_M"`` instead of raw integers.  :class:`IOIMCBuilder` collects named
states and transitions and produces an immutable :class:`IOIMC`.
"""

from __future__ import annotations

from ..errors import ModelError
from .actions import Signature
from .ioimc import IOIMC


class IOIMCBuilder:
    """Incrementally build an :class:`IOIMC` using string state names."""

    def __init__(self, name: str, signature: Signature) -> None:
        self.name = name
        self.signature = signature
        self._state_index: dict[str, int] = {}
        self._state_names: list[str] = []
        self._labels: dict[int, set[str]] = {}
        self._interactive: list[list[tuple[str, int]]] = []
        self._markovian: list[list[tuple[float, int]]] = []
        self._initial: int | None = None

    # ------------------------------------------------------------------ #
    # states
    # ------------------------------------------------------------------ #
    def state(self, name: str, *, labels: set[str] | None = None, initial: bool = False) -> int:
        """Register (or look up) the state called ``name`` and return its index."""
        if name in self._state_index:
            index = self._state_index[name]
        else:
            index = len(self._state_names)
            self._state_index[name] = index
            self._state_names.append(name)
            self._interactive.append([])
            self._markovian.append([])
        if labels:
            self._labels.setdefault(index, set()).update(labels)
        if initial:
            if self._initial is not None and self._initial != index:
                raise ModelError(f"{self.name}: initial state declared twice")
            self._initial = index
        return index

    def has_state(self, name: str) -> bool:
        """Whether a state called ``name`` has been registered."""
        return name in self._state_index

    def label(self, state_name: str, *labels: str) -> None:
        """Attach atomic propositions to an existing state."""
        index = self.state(state_name)
        self._labels.setdefault(index, set()).update(labels)

    # ------------------------------------------------------------------ #
    # transitions
    # ------------------------------------------------------------------ #
    def interactive(self, source: str, action: str, target: str) -> None:
        """Add an interactive transition (the action must be in the signature)."""
        if action not in self.signature.all_actions:
            raise ModelError(
                f"{self.name}: action {action!r} is not declared in the signature"
            )
        src = self.state(source)
        dst = self.state(target)
        entry = (action, dst)
        if entry not in self._interactive[src]:
            self._interactive[src].append(entry)

    def markovian(self, source: str, rate: float, target: str) -> None:
        """Add a Markovian transition with exponential ``rate``."""
        if rate <= 0:
            raise ModelError(f"{self.name}: Markovian rate must be positive, got {rate}")
        src = self.state(source)
        dst = self.state(target)
        self._markovian[src].append((rate, dst))

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #
    def build(self, *, input_enabled: bool = True) -> IOIMC:
        """Finalize the automaton.

        When ``input_enabled`` is ``True`` (the default), implicit input
        self-loops are materialised for every state/input pair without an
        explicit transition, mirroring the convention of the paper's figures.
        """
        if self._initial is None:
            raise ModelError(f"{self.name}: no initial state was declared")
        automaton = IOIMC(
            self.name,
            self.signature,
            len(self._state_names),
            self._initial,
            self._interactive,
            self._markovian,
            {state: frozenset(props) for state, props in self._labels.items()},
            self._state_names,
        )
        if input_enabled:
            automaton = automaton.ensure_input_enabled()
        return automaton
