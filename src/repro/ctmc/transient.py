"""Transient analysis of CTMCs by uniformisation.

``transient_distribution(ctmc, t)`` returns the state-probability vector at
time ``t`` starting from the chain's initial distribution.  The computation
uses the classical uniformisation (Jensen / randomisation) method:

    pi(t) = sum_k  PoissonPMF(k; Lambda * t) * pi(0) * P^k

with ``P = I + Q / Lambda`` and a truncation window chosen so that the
neglected Poisson mass is below a configurable error bound.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse, stats

from ..errors import AnalysisError
from .ctmc import CTMC


def transient_distribution(
    ctmc: CTMC,
    time: float,
    *,
    initial: np.ndarray | None = None,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Probability vector of the chain at ``time``.

    Parameters
    ----------
    ctmc:
        The chain to analyse.
    time:
        Time horizon (``>= 0``).
    initial:
        Optional alternative initial distribution (defaults to the chain's).
    epsilon:
        Bound on the truncated Poisson probability mass.
    """
    if time < 0:
        raise AnalysisError("transient analysis requires a non-negative time horizon")
    distribution = (
        np.array(ctmc.initial_distribution, dtype=float)
        if initial is None
        else np.asarray(initial, dtype=float)
    )
    if distribution.shape != (ctmc.num_states,):
        raise AnalysisError("initial distribution has the wrong length")
    if time == 0 or ctmc.num_transitions == 0:
        return distribution.copy()

    rate = ctmc.uniformization_rate()
    if rate <= 0:
        return distribution.copy()
    probability_matrix = _uniformized_matrix(ctmc, rate)
    left, right, weights = poisson_window(rate * time, epsilon)

    result = np.zeros_like(distribution)
    current = distribution.copy()
    for step in range(right + 1):
        if step >= left:
            result += weights[step - left] * current
        if step < right:
            current = current @ probability_matrix
    total = result.sum()
    if total <= 0 or not np.isfinite(total):
        raise AnalysisError("uniformisation produced an invalid distribution")
    # The truncation error only ever loses mass; renormalise it away.
    return result / total


def transient_probability_of(
    ctmc: CTMC, label: str, time: float, *, epsilon: float = 1e-12
) -> float:
    """Probability of being in a state labelled ``label`` at ``time``."""
    distribution = transient_distribution(ctmc, time, epsilon=epsilon)
    states = ctmc.states_with_label(label)
    return float(distribution[states].sum()) if states else 0.0


def poisson_window(mean: float, epsilon: float) -> tuple[int, int, np.ndarray]:
    """Left/right truncation points and weights of a Poisson(mean) distribution.

    The returned weights cover ``left .. right`` inclusive and sum to at least
    ``1 - epsilon``.
    """
    if mean <= 0:
        return 0, 0, np.array([1.0])
    left = int(stats.poisson.ppf(epsilon / 2.0, mean))
    right = int(stats.poisson.ppf(1.0 - epsilon / 2.0, mean))
    right = max(right, left + 1)
    ks = np.arange(left, right + 1)
    weights = stats.poisson.pmf(ks, mean)
    return left, right, weights


def _uniformized_matrix(ctmc: CTMC, rate: float) -> sparse.csr_matrix:
    """The DTMC matrix ``P = I + Q / Lambda`` of the uniformised chain."""
    generator = ctmc.generator_matrix()
    identity = sparse.identity(ctmc.num_states, format="csr")
    return (identity + generator / rate).tocsr()


__all__ = ["transient_distribution", "transient_probability_of", "poisson_window"]
