"""Labelled CTMCs and their numerical analysis.

The package provides the third stage of the Arcade evaluation pipeline
(Section 4 of the paper): the conversion of the composed I/O-IMC into a
labelled CTMC (:mod:`~repro.ctmc.extraction`) and the standard solution
techniques for availability and reliability
(:mod:`~repro.ctmc.steady_state`, :mod:`~repro.ctmc.transient`,
:mod:`~repro.ctmc.absorbing`, :mod:`~repro.ctmc.measures`), plus the
CSL-style query layer the paper lists as future work (:mod:`~repro.ctmc.csl`).
"""

from .absorbing import make_absorbing, mean_time_to_failure, reliability, unreliability
from .ctmc import CTMC
from .extraction import extract_ctmc
from .lumping import CTMCLumpingResult, lump, lumping_partition
from .measures import (
    DOWN_LABEL,
    DependabilityMeasures,
    evaluate,
    interval_unavailability,
    point_availability,
    steady_state_availability,
    steady_state_unavailability,
)
from .steady_state import (
    absorption_probabilities,
    bottom_strongly_connected_components,
    stationary_of_irreducible,
    steady_state_distribution,
)
from .transient import poisson_window, transient_distribution, transient_probability_of

__all__ = [
    "CTMC",
    "CTMCLumpingResult",
    "DOWN_LABEL",
    "DependabilityMeasures",
    "absorption_probabilities",
    "bottom_strongly_connected_components",
    "evaluate",
    "extract_ctmc",
    "interval_unavailability",
    "lump",
    "lumping_partition",
    "make_absorbing",
    "mean_time_to_failure",
    "point_availability",
    "poisson_window",
    "reliability",
    "stationary_of_irreducible",
    "steady_state_availability",
    "steady_state_distribution",
    "steady_state_unavailability",
    "transient_distribution",
    "transient_probability_of",
    "unreliability",
]
