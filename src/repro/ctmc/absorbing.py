"""Reliability-oriented analysis on absorbing CTMCs.

Reliability questions ("what is the probability that the system has not
failed by time t?") are answered on a variant of the chain in which every
failure state is made absorbing: once the set of ``down`` states is entered
the chain never leaves it, so the probability of being in a ``down`` state at
time ``t`` equals the probability of having failed at some point before
``t`` (the *unreliability*).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..errors import AnalysisError
from .ctmc import CTMC
from .transient import transient_distribution


def make_absorbing(ctmc: CTMC, states: list[int] | set[int]) -> CTMC:
    """Copy of ``ctmc`` with all transitions leaving ``states`` removed."""
    absorbing = set(states)
    transitions = [
        (source, rate, target)
        for source, rate, target in ctmc.transitions()
        if source not in absorbing
    ]
    return CTMC(
        ctmc.num_states,
        transitions,
        ctmc.initial_distribution,
        ctmc.labels,
        ctmc.state_names,
    )


def unreliability(ctmc: CTMC, time: float, *, down_label: str = "down") -> float:
    """Probability that the chain reaches a ``down`` state within ``time``."""
    down_states = ctmc.states_with_label(down_label)
    if not down_states:
        return 0.0
    absorbing_chain = make_absorbing(ctmc, down_states)
    distribution = transient_distribution(absorbing_chain, time)
    return float(distribution[down_states].sum())


def reliability(ctmc: CTMC, time: float, *, down_label: str = "down") -> float:
    """Probability of no system failure within ``time`` (1 - unreliability)."""
    return 1.0 - unreliability(ctmc, time, down_label=down_label)


def mean_time_to_failure(ctmc: CTMC, *, down_label: str = "down") -> float:
    """Expected time until the first visit to a ``down`` state.

    Computed by solving the linear system ``(-Q_TT) m = 1`` on the transient
    (non-``down``) states, where ``Q_TT`` is the generator restricted to those
    states.  Returns ``inf`` when a ``down`` state is unreachable.
    """
    down_states = set(ctmc.states_with_label(down_label))
    if not down_states:
        return float("inf")
    transient = [state for state in range(ctmc.num_states) if state not in down_states]
    if not transient:
        return 0.0
    index = {state: position for position, state in enumerate(transient)}
    size = len(transient)
    rows, cols, data = [], [], []
    exit_to_anywhere = np.zeros(size)
    reaches_down = np.zeros(size, dtype=bool)
    for source, rate, target in ctmc.transitions():
        if source not in index:
            continue
        position = index[source]
        exit_to_anywhere[position] += rate
        if target in index:
            rows.append(position)
            cols.append(index[target])
            data.append(rate)
        else:
            reaches_down[position] = True
    if not reaches_down.any():
        return float("inf")
    negative_q = sparse.csr_matrix(
        (np.negative(data), (rows, cols)), shape=(size, size)
    ).tolil() if data else sparse.lil_matrix((size, size))
    for position in range(size):
        negative_q[position, position] += exit_to_anywhere[position]
    try:
        times = sparse_linalg.spsolve(negative_q.tocsc(), np.ones(size))
    except RuntimeError as error:  # pragma: no cover - singular system
        raise AnalysisError(f"MTTF system could not be solved: {error}") from error
    times = np.asarray(times, dtype=float).reshape(size)
    if np.any(~np.isfinite(times)) or np.any(times < -1e-9):
        return float("inf")
    return float(ctmc.initial_distribution[transient] @ times)


__all__ = ["make_absorbing", "unreliability", "reliability", "mean_time_to_failure"]
