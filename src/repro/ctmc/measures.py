"""High-level dependability measures on labelled CTMCs.

These helpers wrap the numerical routines of ``steady_state``, ``transient``
and ``absorbing`` with the vocabulary used in the paper's case studies:
steady-state (un)availability, point availability, (un)reliability and mean
time to failure.  The convention throughout the library is that system
failure states carry the atomic proposition ``"down"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .absorbing import mean_time_to_failure, reliability, unreliability
from .ctmc import CTMC
from .steady_state import steady_state_distribution
from .transient import transient_distribution

#: Atomic proposition marking system-failure states.
DOWN_LABEL = "down"


@dataclass(frozen=True)
class DependabilityMeasures:
    """A bundle of the standard measures for one model/time horizon."""

    availability: float
    unavailability: float
    reliability: float | None
    unreliability: float | None
    mean_time_to_failure: float
    time_horizon: float | None


def steady_state_availability(ctmc: CTMC, *, down_label: str = DOWN_LABEL) -> float:
    """Long-run fraction of time the system is operational."""
    return 1.0 - steady_state_unavailability(ctmc, down_label=down_label)


def steady_state_unavailability(ctmc: CTMC, *, down_label: str = DOWN_LABEL) -> float:
    """Long-run fraction of time the system is failed."""
    distribution = steady_state_distribution(ctmc)
    down_states = ctmc.states_with_label(down_label)
    return float(distribution[down_states].sum()) if down_states else 0.0


def point_availability(
    ctmc: CTMC, time: float, *, down_label: str = DOWN_LABEL
) -> float:
    """Probability that the system is operational at the time instant ``time``."""
    distribution = transient_distribution(ctmc, time)
    down_states = ctmc.states_with_label(down_label)
    down_probability = float(distribution[down_states].sum()) if down_states else 0.0
    return 1.0 - down_probability


def interval_unavailability(
    ctmc: CTMC,
    time: float,
    *,
    down_label: str = DOWN_LABEL,
    resolution: int = 200,
) -> float:
    """Average unavailability over ``[0, time]`` (trapezoidal integration)."""
    if time <= 0:
        return 1.0 - point_availability(ctmc, 0.0, down_label=down_label)
    times = np.linspace(0.0, time, resolution)
    values = [1.0 - point_availability(ctmc, float(t), down_label=down_label) for t in times]
    return float(np.trapz(values, times) / time)


def evaluate(
    ctmc: CTMC, *, time: float | None = None, down_label: str = DOWN_LABEL
) -> DependabilityMeasures:
    """Compute the full bundle of measures (reliability only if ``time`` given)."""
    availability = steady_state_availability(ctmc, down_label=down_label)
    if time is not None:
        unrel = unreliability(ctmc, time, down_label=down_label)
        rel = 1.0 - unrel
    else:
        unrel = None
        rel = None
    return DependabilityMeasures(
        availability=availability,
        unavailability=1.0 - availability,
        reliability=rel,
        unreliability=unrel,
        mean_time_to_failure=mean_time_to_failure(ctmc, down_label=down_label),
        time_horizon=time,
    )


__all__ = [
    "DOWN_LABEL",
    "DependabilityMeasures",
    "evaluate",
    "interval_unavailability",
    "point_availability",
    "reliability",
    "steady_state_availability",
    "steady_state_unavailability",
    "unreliability",
]
