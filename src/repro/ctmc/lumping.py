"""Ordinary lumping of labelled CTMCs.

After the compositional aggregation has produced the final CTMC, one more
ordinary-lumpability pass (respecting the ``down`` labelling) can shrink the
chain further without changing any availability or reliability measure.  Two
states may be merged when they carry the same labels and have the same
cumulative rate into every block of the partition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lumping.partition import Partition
from ..lumping.refinement import refine_with_worklist
from .ctmc import CTMC


@dataclass(frozen=True)
class CTMCLumpingResult:
    """Quotient chain plus the block index of every original state."""

    quotient: CTMC
    block_of_state: tuple[int, ...]


def lumping_partition(ctmc: CTMC, *, respect_labels: bool = True) -> Partition:
    """Coarsest ordinary-lumpability partition of ``ctmc``.

    Runs on the splitter-worklist engine: after a block splits, only blocks
    containing predecessors of the split states are re-examined, instead of
    re-grouping the whole chain every round.
    """
    if respect_labels:
        keys = [ctmc.label_of(state) for state in range(ctmc.num_states)]
    else:
        keys = [frozenset()] * ctmc.num_states

    successors: list[list[tuple[float, int]]] = [[] for _ in range(ctmc.num_states)]
    predecessor_sets: list[set[int]] = [set() for _ in range(ctmc.num_states)]
    for source, rate, target in ctmc.transitions():
        successors[source].append((rate, target))
        predecessor_sets[target].add(source)
    predecessors = [sorted(sources) for sources in predecessor_sets]

    def signature(state: int, block_of) -> tuple:
        rates: dict[int, float] = {}
        for rate, target in successors[state]:
            block = block_of[target]
            rates[block] = rates.get(block, 0.0) + rate
        return tuple(sorted((block, float(f"{rate:.9e}")) for block, rate in rates.items()))

    return refine_with_worklist(keys, signature, predecessors)


def lump(ctmc: CTMC, *, respect_labels: bool = True) -> CTMCLumpingResult:
    """Lump ``ctmc`` into its ordinary-lumpability quotient."""
    partition = lumping_partition(ctmc, respect_labels=respect_labels)
    block_of = partition.block_of
    num_blocks = partition.num_blocks

    representative: list[int | None] = [None] * num_blocks
    for state in range(ctmc.num_states):
        block = block_of[state]
        if representative[block] is None:
            representative[block] = state

    by_source: list[list[tuple[float, int]]] = [[] for _ in range(ctmc.num_states)]
    for source, rate, target in ctmc.transitions():
        by_source[source].append((rate, target))

    transitions: list[tuple[int, float, int]] = []
    for block, state in enumerate(representative):
        assert state is not None
        rates: dict[int, float] = {}
        for rate, target in by_source[state]:
            rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
        for target_block, rate in rates.items():
            if target_block != block:
                transitions.append((block, rate, target_block))

    initial = [0.0] * num_blocks
    for state, probability in enumerate(ctmc.initial_distribution):
        initial[block_of[state]] += float(probability)
    labels = {}
    for state in range(ctmc.num_states):
        props = ctmc.label_of(state)
        if props:
            labels[block_of[state]] = labels.get(block_of[state], frozenset()) | props
    names = [ctmc.state_name(state) for state in representative if state is not None]
    quotient = CTMC(num_blocks, transitions, initial, labels, names)
    return CTMCLumpingResult(quotient=quotient, block_of_state=tuple(block_of))


__all__ = ["CTMCLumpingResult", "lump", "lumping_partition"]
