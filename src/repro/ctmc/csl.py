"""A CSL-style property checker for labelled CTMCs.

Section 6 of the paper lists "CSL-type expressions" as future work for
querying measures beyond plain availability and reliability.  This module
provides that extension: a small continuous stochastic logic with

* atomic propositions (state labels),
* boolean connectives,
* the steady-state operator ``S_{~p}(phi)``,
* the time-bounded probability operator ``P_{~p}(phi U^{<=t} psi)`` and its
  unbounded variant, and
* ``P_{~p}(F^{<=t} phi)`` / ``P_{~p}(G^{<=t} phi)`` as derived forms.

The checker returns the *satisfaction set* of a formula and, for the
quantitative operators, the underlying probability values, so it can be used
both for verification ("is the unavailability below 1e-6?") and for
measurement ("what is the probability of failure within 50 hours?").
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import AnalysisError
from .absorbing import make_absorbing
from .ctmc import CTMC
from .steady_state import steady_state_distribution
from .transient import transient_distribution


class Formula:
    """Base class of CSL state formulas."""


@dataclass(frozen=True)
class Atomic(Formula):
    """An atomic proposition (a state label such as ``"down"``)."""

    label: str


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The formula satisfied by every state."""


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class SteadyState(Formula):
    """``S_{~p}(operand)``: the long-run probability of ``operand`` obeys the bound."""

    comparison: str
    bound: float
    operand: Formula


@dataclass(frozen=True)
class ProbabilisticUntil(Formula):
    """``P_{~p}(left U^{<=time} right)`` (``time=None`` means unbounded)."""

    comparison: str
    bound: float
    left: Formula
    right: Formula
    time: float | None = None


def eventually(comparison: str, bound: float, operand: Formula, time: float | None = None):
    """``P_{~p}(F^{<=t} operand)`` expressed as an until formula."""
    return ProbabilisticUntil(comparison, bound, TrueFormula(), operand, time)


def globally(comparison: str, bound: float, operand: Formula, time: float | None = None):
    """``P_{~p}(G^{<=t} operand)`` via the duality ``G phi = not F not phi``."""
    dual_comparison = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[comparison]
    return Not(eventually(dual_comparison, 1.0 - bound, Not(operand), time))


_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class CSLChecker:
    """Model checker for the CSL fragment above on a labelled CTMC."""

    def __init__(self, ctmc: CTMC) -> None:
        self.ctmc = ctmc

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def satisfaction_set(self, formula: Formula) -> set[int]:
        """States of the chain satisfying ``formula``."""
        return self._check(formula)

    def holds_initially(self, formula: Formula) -> bool:
        """Whether the formula holds in (every state of positive mass of) the initial distribution."""
        satisfied = self._check(formula)
        initial_states = np.flatnonzero(self.ctmc.initial_distribution > 0)
        return all(int(state) in satisfied for state in initial_states)

    def until_probabilities(
        self, left: Formula, right: Formula, time: float | None
    ) -> np.ndarray:
        """Per-state probability of ``left U^{<=time} right``."""
        left_set = self._check(left)
        right_set = self._check(right)
        return self._until(left_set, right_set, time)

    def steady_state_probability(self, operand: Formula) -> float:
        """Long-run probability of being in a state satisfying ``operand``."""
        states = self._check(operand)
        distribution = steady_state_distribution(self.ctmc)
        return float(sum(distribution[state] for state in states))

    # ------------------------------------------------------------------ #
    # recursive evaluation
    # ------------------------------------------------------------------ #
    def _check(self, formula: Formula) -> set[int]:
        if isinstance(formula, TrueFormula):
            return set(range(self.ctmc.num_states))
        if isinstance(formula, Atomic):
            return set(self.ctmc.states_with_label(formula.label))
        if isinstance(formula, Not):
            return set(range(self.ctmc.num_states)) - self._check(formula.operand)
        if isinstance(formula, And):
            return self._check(formula.left) & self._check(formula.right)
        if isinstance(formula, Or):
            return self._check(formula.left) | self._check(formula.right)
        if isinstance(formula, SteadyState):
            probability = self.steady_state_probability(formula.operand)
            comparator = _COMPARATORS[formula.comparison]
            if comparator(probability, formula.bound):
                return set(range(self.ctmc.num_states))
            return set()
        if isinstance(formula, ProbabilisticUntil):
            probabilities = self.until_probabilities(formula.left, formula.right, formula.time)
            comparator = _COMPARATORS[formula.comparison]
            return {
                state
                for state in range(self.ctmc.num_states)
                if comparator(float(probabilities[state]), formula.bound)
            }
        raise AnalysisError(f"unknown CSL formula {formula!r}")

    def _until(self, left: set[int], right: set[int], time: float | None) -> np.ndarray:
        """Probability of reaching ``right`` through ``left`` states (per state)."""
        # Standard construction: make right-states absorbing (success) and
        # states satisfying neither operand absorbing (failure), then ask for
        # the transient/limit probability of sitting in a right-state.
        bad = set(range(self.ctmc.num_states)) - left - right
        modified = make_absorbing(self.ctmc, right | bad)
        probabilities = np.zeros(self.ctmc.num_states)
        if time is None:
            horizon = self._unbounded_horizon(modified)
        else:
            horizon = time
        for state in range(self.ctmc.num_states):
            if state in right:
                probabilities[state] = 1.0
                continue
            if state in bad:
                probabilities[state] = 0.0
                continue
            point = np.zeros(self.ctmc.num_states)
            point[state] = 1.0
            at_time = transient_distribution(modified, horizon, initial=point)
            probabilities[state] = float(sum(at_time[target] for target in right))
        return probabilities

    @staticmethod
    def _unbounded_horizon(ctmc: CTMC) -> float:
        """A pragmatic horizon approximating the unbounded until.

        The absorbing chain converges geometrically; a horizon of many times
        the slowest expected holding time gives probabilities accurate far
        beyond the tolerances used in the tests.
        """
        rates = [rate for _, rate, _ in ctmc.transitions()]
        if not rates:
            return 1.0
        slowest = min(rates)
        return 200.0 / slowest


__all__ = [
    "Atomic",
    "And",
    "CSLChecker",
    "Formula",
    "Not",
    "Or",
    "ProbabilisticUntil",
    "SteadyState",
    "TrueFormula",
    "eventually",
    "globally",
]
