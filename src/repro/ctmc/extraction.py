"""Conversion of a closed I/O-IMC into a labelled CTMC.

This is the third step of the evaluation approach of Section 4: once the
composer has produced a single I/O-IMC for the whole system and every signal
has been hidden, the model contains only internal (tau) and Markovian
transitions.  Under the maximal-progress assumption the internal transitions
are taken in zero time, so the model is equivalent to a CTMC over its
*tangible* states (states without urgent transitions):

1. Markovian transitions of unstable states are removed (maximal progress);
2. every vanishing (unstable) state is replaced by the tangible state its
   tau-transitions lead to — the models produced by the Arcade translation
   are *confluent*, i.e. all maximal tau-paths from a vanishing state end in
   the same tangible state, which is verified here;
3. only the labels of the tangible states are kept: vanishing states are
   occupied for zero time, so their atomic propositions cannot contribute to
   any (time-based) measure.  In Arcade models the system-failure condition
   can never hold *only* during a vanishing instant (repairs take positive
   time), so no failure information is lost.
"""

from __future__ import annotations

from ..errors import NondeterminismError
from ..ioimc import IOIMC
from ..ioimc.actions import ActionKind
from ..lumping.reductions import maximal_progress_cut
from .ctmc import CTMC


def extract_ctmc(automaton: IOIMC, *, on_nondeterminism: str = "error") -> CTMC:
    """Convert a closed I/O-IMC into a labelled CTMC.

    Parameters
    ----------
    automaton:
        The fully composed I/O-IMC.  It must be *closed*: no input actions may
        remain and every output should have been hidden.  Remaining outputs
        are tolerated and treated like internal actions (they cannot
        synchronise with anything anymore).
    on_nondeterminism:
        ``"error"`` (default) raises :class:`NondeterminismError` when a
        vanishing state can reach two different tangible states via internal
        moves; ``"uniform"`` resolves the choice uniformly at random instead
        (and is reported in the CTMC's construction notes).
    """
    if automaton.signature.inputs:
        raise NondeterminismError(
            "the I/O-IMC still has input actions "
            f"{sorted(automaton.signature.inputs)}; it is not a closed system"
        )
    automaton = maximal_progress_cut(automaton)

    urgent_successors: list[list[int]] = [[] for _ in automaton.states()]
    for state in automaton.states():
        for action, target in automaton.interactive[state]:
            kind = automaton.signature.kind_of(action)
            if kind is ActionKind.INPUT:
                continue
            urgent_successors[state].append(target)
    tangible = [state for state in automaton.states() if not urgent_successors[state]]
    tangible_index = {state: position for position, state in enumerate(tangible)}

    # Resolve every state to the distribution over tangible states reached by
    # exhausting urgent transitions.  With confluence this is a single state.
    resolution: dict[int, dict[int, float]] = {}

    def resolve(state: int) -> dict[int, float]:
        cached = resolution.get(state)
        if cached is not None:
            return cached
        resolution[state] = {}  # guard against tau-cycles
        if not urgent_successors[state]:
            result = {state: 1.0}
        else:
            targets = urgent_successors[state]
            combined: dict[int, float] = {}
            per_branch = 1.0 / len(targets)
            reachable_tangibles: set[int] = set()
            for target in targets:
                for tangible_state, weight in resolve(target).items():
                    combined[tangible_state] = (
                        combined.get(tangible_state, 0.0) + per_branch * weight
                    )
                    reachable_tangibles.add(tangible_state)
            if len(reachable_tangibles) > 1:
                if on_nondeterminism == "error":
                    names = [automaton.state_name(s) for s in sorted(reachable_tangibles)]
                    raise NondeterminismError(
                        f"vanishing state {automaton.state_name(state)} can reach "
                        f"{len(reachable_tangibles)} different tangible states "
                        f"({', '.join(names[:5])}...); the model is not confluent"
                    )
            result = combined
        resolution[state] = result
        return result

    transitions: list[tuple[int, float, int]] = []
    for state in tangible:
        source = tangible_index[state]
        for rate, target in automaton.markovian[state]:
            for tangible_target, weight in resolve(target).items():
                transitions.append((source, rate * weight, tangible_index[tangible_target]))

    initial_resolution = resolve(automaton.initial)
    if len(initial_resolution) == 1:
        initial: int | list[float] = tangible_index[next(iter(initial_resolution))]
    else:
        vector = [0.0] * len(tangible)
        for tangible_state, weight in initial_resolution.items():
            vector[tangible_index[tangible_state]] = weight
        initial = vector

    labels = {}
    for state in tangible:
        props = automaton.label_of(state)
        if props:
            labels[tangible_index[state]] = frozenset(props)
    names = [automaton.state_name(state) for state in tangible]
    ctmc = CTMC(len(tangible), transitions, initial, labels, names)
    return ctmc


__all__ = ["extract_ctmc"]
