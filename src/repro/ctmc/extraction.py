"""Conversion of a closed I/O-IMC into a labelled CTMC.

This is the third step of the evaluation approach of Section 4: once the
composer has produced a single I/O-IMC for the whole system and every signal
has been hidden, the model contains only internal (tau) and Markovian
transitions.  Under the maximal-progress assumption the internal transitions
are taken in zero time, so the model is equivalent to a CTMC over its
*tangible* states (states without urgent transitions):

1. Markovian transitions of unstable states are removed (maximal progress);
2. every vanishing (unstable) state is replaced by the tangible state its
   tau-transitions lead to — the models produced by the Arcade translation
   are *confluent*, i.e. all maximal tau-paths from a vanishing state end in
   the same tangible state, which is verified here;
3. only the labels of the tangible states are kept: vanishing states are
   occupied for zero time, so their atomic propositions cannot contribute to
   any (time-based) measure.  In Arcade models the system-failure condition
   can never hold *only* during a vanishing instant (repairs take positive
   time), so no failure information is lost.

The conversion runs on the CSR tables of the automaton's
:class:`~repro.ioimc.indexed.TransitionIndex`: tangibility is the index's
stability bit, the Markovian edges whose target is already tangible — the
vast majority after reduction — are renumbered wholesale, and only edges
into *vanishing* targets walk the tau-resolution (memoised per target).  The
resulting edge columns feed :meth:`repro.ctmc.CTMC.from_arrays`, so no
Python per-transition loop is left between the final I/O-IMC and the chain.
"""

from __future__ import annotations

import numpy as np

from ..errors import NondeterminismError
from ..ioimc import IOIMC
from ..lumping.reductions import maximal_progress_cut
from ..nputil import csr_indptr
from .ctmc import CTMC


def extract_ctmc(automaton: IOIMC, *, on_nondeterminism: str = "error") -> CTMC:
    """Convert a closed I/O-IMC into a labelled CTMC.

    Parameters
    ----------
    automaton:
        The fully composed I/O-IMC.  It must be *closed*: no input actions may
        remain and every output should have been hidden.  Remaining outputs
        are tolerated and treated like internal actions (they cannot
        synchronise with anything anymore).
    on_nondeterminism:
        ``"error"`` (default) raises :class:`NondeterminismError` when a
        vanishing state can reach two different tangible states via internal
        moves; ``"uniform"`` resolves the choice uniformly at random instead.
    """
    if automaton.signature.inputs:
        raise NondeterminismError(
            "the I/O-IMC still has input actions "
            f"{sorted(automaton.signature.inputs)}; it is not a closed system"
        )
    automaton = maximal_progress_cut(automaton)
    index = automaton.index()
    interactive_csr = index.interactive_csr
    markovian_csr = index.markovian_csr()

    # With no inputs left every interactive transition is urgent, so the
    # tangible states are exactly the index's stable ones.
    tangible_flags = index.stable_flags
    tangible = np.flatnonzero(tangible_flags)
    tangible_of = np.full(automaton.num_states, -1, dtype=np.int64)
    tangible_of[tangible] = np.arange(len(tangible), dtype=np.int64)

    # Urgent successor CSR (sources are the vanishing states, by definition).
    urgent = ~index.input_flags[interactive_csr.action]
    urgent_source = interactive_csr.source[urgent]
    urgent_target = interactive_csr.target[urgent]
    urgent_indptr = csr_indptr(urgent_source, automaton.num_states)

    # Resolve a state to the distribution over tangible states reached by
    # exhausting urgent transitions.  With confluence this is a single state.
    resolution: dict[int, dict[int, float]] = {}

    def resolve(state: int) -> dict[int, float]:
        cached = resolution.get(state)
        if cached is not None:
            return cached
        resolution[state] = {}  # guard against tau-cycles
        if tangible_flags[state]:
            result = {state: 1.0}
        else:
            targets = urgent_target[
                urgent_indptr[state] : urgent_indptr[state + 1]
            ].tolist()
            combined: dict[int, float] = {}
            per_branch = 1.0 / len(targets)
            reachable_tangibles: set[int] = set()
            for target in targets:
                for tangible_state, weight in resolve(target).items():
                    combined[tangible_state] = (
                        combined.get(tangible_state, 0.0) + per_branch * weight
                    )
                    reachable_tangibles.add(tangible_state)
            if len(reachable_tangibles) > 1:
                if on_nondeterminism == "error":
                    names = [automaton.state_name(s) for s in sorted(reachable_tangibles)]
                    raise NondeterminismError(
                        f"vanishing state {automaton.state_name(state)} can reach "
                        f"{len(reachable_tangibles)} different tangible states "
                        f"({', '.join(names[:5])}...); the model is not confluent"
                    )
            result = combined
        resolution[state] = result
        return result

    # Markovian sources are all tangible (maximal progress cut above); edges
    # whose target is tangible too — the common case — map wholesale.  Edges
    # into vanishing targets go through the (memoised) tau-resolution; each
    # unique vanishing target resolves once.
    edge_source = tangible_of[markovian_csr.source]
    edge_rate = markovian_csr.rate
    edge_target = tangible_of[markovian_csr.target]
    vanishing_edges = np.flatnonzero(edge_target < 0)
    if len(vanishing_edges):
        confluent_of = np.full(automaton.num_states, -1, dtype=np.int64)
        branching: dict[int, dict[int, float]] = {}
        for state in np.unique(markovian_csr.target[vanishing_edges]).tolist():
            resolved = resolve(state)
            if len(resolved) == 1:
                confluent_of[state] = tangible_of[next(iter(resolved))]
            else:
                branching[state] = resolved
        if not branching:
            edge_target = np.where(
                edge_target >= 0, edge_target, confluent_of[markovian_csr.target]
            )
        else:
            # Rare (only reachable with on_nondeterminism="uniform"): expand
            # the affected edges in place so the edge order — and hence the
            # bit-exact rate accumulation — is preserved.
            sources, rates, targets = [], [], []
            for position in range(len(edge_source)):
                target = int(markovian_csr.target[position])
                if edge_target[position] >= 0:
                    sources.append(int(edge_source[position]))
                    rates.append(float(edge_rate[position]))
                    targets.append(int(edge_target[position]))
                    continue
                for tangible_state, weight in resolve(target).items():
                    sources.append(int(edge_source[position]))
                    rates.append(float(edge_rate[position]) * weight)
                    targets.append(int(tangible_of[tangible_state]))
            edge_source = np.array(sources, dtype=np.int64)
            edge_rate = np.array(rates, dtype=np.float64)
            edge_target = np.array(targets, dtype=np.int64)

    initial_resolution = resolve(automaton.initial)
    if len(initial_resolution) == 1:
        initial: int | list[float] = int(tangible_of[next(iter(initial_resolution))])
    else:
        vector = [0.0] * len(tangible)
        for tangible_state, weight in initial_resolution.items():
            vector[int(tangible_of[tangible_state])] = weight
        initial = vector

    labels = {}
    for state, props in automaton.labels.items():
        if tangible_flags[state] and props:
            labels[int(tangible_of[state])] = frozenset(props)
    names = [automaton.state_name(state) for state in tangible.tolist()]
    return CTMC.from_arrays(
        len(tangible), edge_source, edge_rate, edge_target, initial, labels, names
    )


__all__ = ["extract_ctmc"]
