"""Labelled continuous-time Markov chains.

The final step of the Arcade evaluation pipeline (Section 4 of the paper)
converts the fully composed and aggregated I/O-IMC into a labelled CTMC, on
which standard solution techniques compute availability and reliability.
This module holds the CTMC data structure; the numerical algorithms live in
the sibling modules ``steady_state``, ``transient`` and ``absorbing``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from ..errors import ModelError


class CTMC:
    """A finite labelled continuous-time Markov chain.

    Parameters
    ----------
    num_states:
        Number of states (states are ``0 .. num_states - 1``).
    transitions:
        Iterable of ``(source, rate, target)`` triples with positive rates.
        Parallel transitions between the same pair of states are summed.
    initial:
        Either a single initial state index or a full initial probability
        vector of length ``num_states``.
    labels:
        Mapping from state index to a set of atomic propositions.
    state_names:
        Optional human readable state names.
    """

    def __init__(
        self,
        num_states: int,
        transitions: Iterable[tuple[int, float, int]],
        initial: int | Sequence[float] = 0,
        labels: Mapping[int, frozenset[str]] | None = None,
        state_names: Sequence[str] | None = None,
    ) -> None:
        if num_states <= 0:
            raise ModelError("a CTMC needs at least one state")
        self.num_states = num_states
        rates: dict[tuple[int, int], float] = {}
        for source, rate, target in transitions:
            if rate <= 0:
                raise ModelError(f"transition rate must be positive, got {rate}")
            if not (0 <= source < num_states and 0 <= target < num_states):
                raise ModelError("transition endpoint out of range")
            if source == target:
                # A rate back into the same state has no effect on the
                # stochastic behaviour of a CTMC; drop it.
                continue
            rates[(source, target)] = rates.get((source, target), 0.0) + rate
        self._rates = rates
        self._finalize(initial, labels, state_names)

    def _finalize(
        self,
        initial: int | Sequence[float],
        labels: Mapping[int, frozenset[str]] | None,
        state_names: Sequence[str] | None,
    ) -> None:
        """Validate and attach the initial distribution, labels and names.

        Shared tail of the triple-loop constructor and :meth:`from_arrays`,
        so both construction paths enforce exactly the same invariants.
        """
        num_states = self.num_states
        if isinstance(initial, (int, np.integer)):
            if not 0 <= int(initial) < num_states:
                raise ModelError(f"initial state {initial} out of range")
            distribution = np.zeros(num_states)
            distribution[int(initial)] = 1.0
        else:
            distribution = np.asarray(initial, dtype=float)
            if distribution.shape != (num_states,):
                raise ModelError("initial distribution has the wrong length")
            if np.any(distribution < -1e-12) or abs(distribution.sum() - 1.0) > 1e-9:
                raise ModelError("initial distribution must be a probability vector")
        self.initial_distribution = distribution
        self.labels: dict[int, frozenset[str]] = {
            state: frozenset(props) for state, props in (labels or {}).items() if props
        }
        self.state_names = list(state_names) if state_names is not None else None
        if self.state_names is not None and len(self.state_names) != num_states:
            raise ModelError("need exactly one state name per state")

    @classmethod
    def from_arrays(
        cls,
        num_states: int,
        source: np.ndarray,
        rate: np.ndarray,
        target: np.ndarray,
        initial: int | Sequence[float] = 0,
        labels: Mapping[int, frozenset[str]] | None = None,
        state_names: Sequence[str] | None = None,
    ) -> "CTMC":
        """Build a CTMC from flat per-edge numpy columns without a Python loop.

        Semantically identical to the constructor fed the same edges as
        triples: self-loops are dropped, parallel rates between the same pair
        of states are summed — in edge order, and with the pairs interned in
        first-occurrence order, so the resulting chain is bit-identical to
        the loop-built one.  This is the fast path for
        :func:`repro.ctmc.extract_ctmc`, which hands over the CSR columns of
        the final I/O-IMC directly.
        """
        if num_states <= 0:
            raise ModelError("a CTMC needs at least one state")
        source = np.asarray(source, dtype=np.int64)
        target = np.asarray(target, dtype=np.int64)
        rate = np.asarray(rate, dtype=np.float64)
        if len(rate) and float(rate.min()) <= 0:
            raise ModelError(
                f"transition rate must be positive, got {float(rate.min())}"
            )
        if len(source) and not (
            0 <= int(source.min())
            and int(source.max()) < num_states
            and 0 <= int(target.min())
            and int(target.max()) < num_states
        ):
            raise ModelError("transition endpoint out of range")
        keep = source != target  # self-loops do not affect a CTMC
        source, rate, target = source[keep], rate[keep], target[keep]
        pair = source * num_states + target
        unique_pairs, first_index, inverse = np.unique(
            pair, return_index=True, return_inverse=True
        )
        # Intern pairs by first occurrence (the dict-insertion order of the
        # scalar constructor) and accumulate rates in edge order.
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order), dtype=np.int64)
        sums = np.bincount(rank[inverse], weights=rate, minlength=len(order))
        ordered_pairs = unique_pairs[order]
        sources, targets = np.divmod(ordered_pairs, num_states)

        self = cls.__new__(cls)
        self.num_states = num_states
        self._rates = dict(
            zip(zip(sources.tolist(), targets.tolist()), sums.tolist())
        )
        self._finalize(initial, labels, state_names)
        return self

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def label_of(self, state: int) -> frozenset[str]:
        """Atomic propositions of ``state``."""
        return self.labels.get(state, frozenset())

    def states_with_label(self, label: str) -> list[int]:
        """All states carrying the atomic proposition ``label``."""
        return [state for state in range(self.num_states) if label in self.label_of(state)]

    def state_name(self, state: int) -> str:
        """Human readable name of ``state``."""
        if self.state_names is not None:
            return self.state_names[state]
        return f"s{state}"

    @property
    def num_transitions(self) -> int:
        """Number of (source, target) pairs with positive rate."""
        return len(self._rates)

    def transitions(self) -> Iterable[tuple[int, float, int]]:
        """Iterate over ``(source, rate, target)`` triples."""
        for (source, target), rate in self._rates.items():
            yield source, rate, target

    def exit_rate(self, state: int) -> float:
        """Total rate leaving ``state``."""
        return sum(rate for (source, _), rate in self._rates.items() if source == state)

    def rate_matrix(self) -> sparse.csr_matrix:
        """Sparse matrix ``R`` with ``R[i, j]`` = rate from ``i`` to ``j``."""
        if not self._rates:
            return sparse.csr_matrix((self.num_states, self.num_states))
        rows, cols, data = [], [], []
        for (source, target), rate in self._rates.items():
            rows.append(source)
            cols.append(target)
            data.append(rate)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(self.num_states, self.num_states)
        )

    def generator_matrix(self) -> sparse.csr_matrix:
        """Infinitesimal generator ``Q = R - diag(exit rates)``."""
        rate_matrix = self.rate_matrix().tolil()
        exit_rates = np.asarray(rate_matrix.sum(axis=1)).flatten()
        for state in range(self.num_states):
            rate_matrix[state, state] -= exit_rates[state]
        return rate_matrix.tocsr()

    def uniformization_rate(self) -> float:
        """A uniformisation constant (strictly larger than every exit rate)."""
        rate_matrix = self.rate_matrix()
        exit_rates = np.asarray(rate_matrix.sum(axis=1)).flatten()
        maximum = float(exit_rates.max()) if self.num_states else 0.0
        return maximum * 1.02 + 1e-12

    def absorbing_states(self) -> list[int]:
        """States without outgoing transitions."""
        has_exit = set(source for source, _ in self._rates)
        return [state for state in range(self.num_states) if state not in has_exit]

    def restricted_to(self, states: Sequence[int]) -> "CTMC":
        """Sub-chain induced by ``states`` (transitions leaving the set are dropped)."""
        index = {old: new for new, old in enumerate(states)}
        transitions = [
            (index[source], rate, index[target])
            for (source, target), rate in self._rates.items()
            if source in index and target in index
        ]
        initial = np.array([self.initial_distribution[old] for old in states])
        total = initial.sum()
        if total <= 0:
            initial = np.zeros(len(states))
            initial[0] = 1.0
        else:
            initial = initial / total
        labels = {index[old]: self.label_of(old) for old in states if self.label_of(old)}
        names = [self.state_name(old) for old in states] if self.state_names else None
        return CTMC(len(states), transitions, initial, labels, names)

    def summary(self) -> dict[str, int]:
        """Size statistics used by the benchmarks."""
        return {"states": self.num_states, "transitions": self.num_transitions}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTMC(states={self.num_states}, transitions={self.num_transitions})"


__all__ = ["CTMC"]
