"""Steady-state (long-run) analysis of labelled CTMCs.

The long-run distribution is computed exactly, including for reducible
chains:

1. the bottom strongly connected components (BSCCs) of the transition graph
   are identified;
2. the probability of eventually being absorbed into each BSCC, starting from
   the initial distribution, is obtained from a sparse linear system;
3. the stationary distribution *within* each BSCC is computed with the
   numerically robust GTH elimination (for moderately sized classes) or a
   sparse direct solve of the global balance equations;
4. the pieces are combined into the overall long-run distribution.

For the irreducible chains produced by the repairable Arcade case studies
only steps 3 applies, but the general treatment makes the solver reusable for
models with absorbing failure states.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..errors import AnalysisError
from .ctmc import CTMC

#: Largest BSCC size for which the dense GTH elimination is used.
_GTH_LIMIT = 1500


def steady_state_distribution(ctmc: CTMC) -> np.ndarray:
    """Long-run probability vector of ``ctmc`` from its initial distribution.

    The result is memoised on the chain (CTMCs are immutable after
    construction): every long-run measure of the same chain reuses one solve
    instead of re-running the cubic GTH elimination.  The returned array is
    marked read-only because it is shared between callers.
    """
    cached = getattr(ctmc, "_steady_state_cache", None)
    if cached is not None:
        return cached
    bsccs = bottom_strongly_connected_components(ctmc)
    if not bsccs:
        raise AnalysisError("the CTMC has no bottom strongly connected component")
    absorption = absorption_probabilities(ctmc, bsccs)
    distribution = np.zeros(ctmc.num_states)
    for weight, component in zip(absorption, bsccs):
        if weight <= 0.0:
            continue
        local = stationary_of_irreducible(ctmc, component)
        for state, probability in zip(component, local):
            distribution[state] += weight * probability
    total = distribution.sum()
    if not np.isfinite(total) or abs(total - 1.0) > 1e-6:
        raise AnalysisError(f"steady-state distribution does not sum to one ({total})")
    result = distribution / total
    result.setflags(write=False)
    ctmc._steady_state_cache = result
    return result


def bottom_strongly_connected_components(ctmc: CTMC) -> list[list[int]]:
    """All BSCCs of the CTMC's transition graph (sorted state lists)."""
    successors: list[list[int]] = [[] for _ in range(ctmc.num_states)]
    for source, _, target in ctmc.transitions():
        successors[source].append(target)
    component_of = _tarjan_scc(ctmc.num_states, successors)
    num_components = max(component_of) + 1 if component_of else 0
    is_bottom = [True] * num_components
    for source, _, target in ctmc.transitions():
        if component_of[source] != component_of[target]:
            is_bottom[component_of[source]] = False
    members: list[list[int]] = [[] for _ in range(num_components)]
    for state, component in enumerate(component_of):
        members[component].append(state)
    return [sorted(states) for index, states in enumerate(members) if is_bottom[index]]


def absorption_probabilities(ctmc: CTMC, bsccs: list[list[int]]) -> np.ndarray:
    """Probability of eventually entering each BSCC from the initial distribution."""
    in_bscc = {}
    for index, component in enumerate(bsccs):
        for state in component:
            in_bscc[state] = index
    transient = [state for state in range(ctmc.num_states) if state not in in_bscc]
    weights = np.zeros(len(bsccs))
    # Mass that already starts inside a BSCC stays there.
    for state, probability in enumerate(ctmc.initial_distribution):
        if probability > 0 and state in in_bscc:
            weights[in_bscc[state]] += probability
    if not transient:
        return weights
    transient_index = {state: position for position, state in enumerate(transient)}
    exit_rates = np.zeros(len(transient))
    rows, cols, data = [], [], []
    into_bscc = np.zeros((len(transient), len(bsccs)))
    for source, rate, target in ctmc.transitions():
        if source not in transient_index:
            continue
        position = transient_index[source]
        exit_rates[position] += rate
        if target in transient_index:
            rows.append(position)
            cols.append(transient_index[target])
            data.append(rate)
        else:
            into_bscc[position, in_bscc[target]] += rate
    if np.any(exit_rates <= 0):
        raise AnalysisError("a transient state has no outgoing transition")
    # Embedded jump chain: P = R / exit, absorption solves (I - P_TT) x = P_TB.
    scale = 1.0 / exit_rates
    p_tt = sparse.csr_matrix(
        (np.array(data) * scale[np.array(rows, dtype=int)], (rows, cols)),
        shape=(len(transient), len(transient)),
    ) if data else sparse.csr_matrix((len(transient), len(transient)))
    p_tb = into_bscc * scale[:, None]
    system = sparse.identity(len(transient), format="csc") - p_tt.tocsc()
    solution = sparse_linalg.spsolve(system, p_tb)
    solution = np.atleast_2d(solution)
    if solution.shape != (len(transient), len(bsccs)):
        solution = solution.reshape(len(transient), len(bsccs))
    initial_transient = np.array(
        [ctmc.initial_distribution[state] for state in transient]
    )
    weights += initial_transient @ solution
    return weights


def stationary_of_irreducible(ctmc: CTMC, states: list[int]) -> np.ndarray:
    """Stationary distribution of the irreducible sub-chain induced by ``states``."""
    if len(states) == 1:
        return np.array([1.0])
    index = {state: position for position, state in enumerate(states)}
    if len(states) <= _GTH_LIMIT:
        rates = np.zeros((len(states), len(states)))
        for source, rate, target in ctmc.transitions():
            if source in index and target in index:
                rates[index[source], index[target]] += rate
        return _gth(rates)
    return _sparse_stationary(ctmc, states, index)


def _gth(rates: np.ndarray) -> np.ndarray:
    """Grassmann-Taksar-Heyman elimination (no subtractions, very stable)."""
    size = rates.shape[0]
    matrix = rates.copy().astype(float)
    np.fill_diagonal(matrix, 0.0)
    for n in range(size - 1, 0, -1):
        total = matrix[n, :n].sum()
        if total <= 0:
            raise AnalysisError("GTH elimination hit a state with no backward rate; "
                                "the sub-chain is not irreducible")
        matrix[:n, :n] += np.outer(matrix[:n, n], matrix[n, :n]) / total
        matrix[:n, n] /= total
    solution = np.zeros(size)
    solution[0] = 1.0
    for n in range(1, size):
        solution[n] = solution[:n] @ matrix[:n, n]
    return solution / solution.sum()


def _sparse_stationary(ctmc: CTMC, states: list[int], index: dict[int, int]) -> np.ndarray:
    """Solve the global balance equations of a large irreducible sub-chain."""
    size = len(states)
    rows, cols, data = [], [], []
    exit_rates = np.zeros(size)
    for source, rate, target in ctmc.transitions():
        if source in index and target in index:
            rows.append(index[target])
            cols.append(index[source])
            data.append(rate)
            exit_rates[index[source]] += rate
    generator_t = sparse.csr_matrix((data, (rows, cols)), shape=(size, size)).tolil()
    for position in range(size):
        generator_t[position, position] -= exit_rates[position]
    # Replace the last equation by the normalisation constraint.
    generator_t = generator_t.tocsr()
    system = sparse.vstack(
        [generator_t[:-1, :], sparse.csr_matrix(np.ones((1, size)))]
    ).tocsc()
    rhs = np.zeros(size)
    rhs[-1] = 1.0
    solution = sparse_linalg.spsolve(system, rhs)
    solution = np.maximum(solution, 0.0)
    total = solution.sum()
    if total <= 0 or not np.isfinite(total):
        raise AnalysisError("sparse stationary solve failed")
    return solution / total


def _tarjan_scc(num_states: int, successors: list[list[int]]) -> list[int]:
    """Iterative Tarjan strongly-connected-components; returns component ids."""
    index_counter = 0
    stack: list[int] = []
    on_stack = [False] * num_states
    indices = [-1] * num_states
    lowlink = [0] * num_states
    component_of = [-1] * num_states
    num_components = 0

    for root in range(num_states):
        if indices[root] != -1:
            continue
        work = [(root, iter(successors[root]))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, iterator = work[-1]
            advanced = False
            for successor in iterator:
                if indices[successor] == -1:
                    indices[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(successors[successor])))
                    advanced = True
                    break
                if on_stack[successor]:
                    lowlink[node] = min(lowlink[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component_of[member] = num_components
                    if member == node:
                        break
                num_components += 1
    return component_of


__all__ = [
    "steady_state_distribution",
    "bottom_strongly_connected_components",
    "absorption_probabilities",
    "stationary_of_irreducible",
]
