"""Composition-order helpers.

"The order in which the I/O-IMC models are composed is given by the user"
(Section 4 of the paper) — and choosing it well is what makes compositional
aggregation effective.  This module turns a *subsystem decomposition* (an
ordered list of groups of basic blocks, e.g. "the processors", "controller
set 1", "disk cluster 3", ...) into a full nested composition order:

* the blocks of each group are composed together first,
* every fault-tree gate is scheduled at the earliest point of the chain at
  which all of the blocks it (transitively) observes have been composed, so
  its signals can be hidden immediately, and
* the groups are chained left-deep, so that each step adds one small
  subsystem to the accumulated composite instead of multiplying two large
  halves.
"""

from __future__ import annotations

from typing import Sequence

from ..arcade.semantics import TranslatedModel
from ..errors import CompositionError
from .composer import CompositionOrder


def hierarchical_order(
    translated: TranslatedModel, leaf_groups: Sequence[Sequence[str]]
) -> CompositionOrder:
    """Build a nested composition order from a subsystem decomposition.

    Parameters
    ----------
    translated:
        The translated model (provides the block signatures and gate list).
    leaf_groups:
        Ordered groups of *non-gate* block names (components, repair units,
        spare management units).  Together the groups must cover every
        non-gate block exactly once; the fault-tree gates created by the
        translator are inserted automatically.
    """
    blocks = translated.blocks
    gate_names = set(translated.gates)
    non_gate_blocks = [name for name in blocks if name not in gate_names]

    covered: set[str] = set()
    for group in leaf_groups:
        for name in group:
            if name not in blocks:
                raise CompositionError(f"unknown block {name!r} in subsystem decomposition")
            if name in gate_names:
                raise CompositionError(
                    f"{name!r} is a fault-tree gate; gates are scheduled automatically"
                )
            if name in covered:
                raise CompositionError(f"block {name!r} appears in two subsystems")
            covered.add(name)
    missing = set(non_gate_blocks) - covered
    if missing:
        raise CompositionError(
            f"subsystem decomposition does not cover block(s) {sorted(missing)}"
        )

    emitter_of: dict[str, str] = {}
    for name, block in blocks.items():
        for action in block.signature.outputs:
            emitter_of[action] = name

    def direct_dependencies(gate: str) -> set[str]:
        return {
            emitter_of[action]
            for action in blocks[gate].signature.inputs
            if action in emitter_of
        }

    leaf_dependencies: dict[str, set[str]] = {}

    def leaves_of(gate: str, trail: tuple[str, ...] = ()) -> set[str]:
        if gate in leaf_dependencies:
            return leaf_dependencies[gate]
        if gate in trail:
            raise CompositionError(f"cyclic gate dependency through {gate!r}")
        leaves: set[str] = set()
        for dependency in direct_dependencies(gate):
            if dependency in gate_names:
                leaves |= leaves_of(dependency, trail + (gate,))
            else:
                leaves.add(dependency)
        leaf_dependencies[gate] = leaves
        return leaves

    # Every gate is scheduled at the earliest point at which all the blocks it
    # observes (transitively) have been composed.  Gates whose leaves all lie
    # inside a single subsystem become part of that subsystem's *nested* group
    # (so the subsystem is composed and reduced on its own before it is joined
    # to the accumulated composite); gates spanning several subsystems are
    # placed at the join.
    cumulative: set[str] = set()
    unassigned = set(gate_names)
    order: CompositionOrder | None = None
    for group in leaf_groups:
        group_set = set(group)
        cumulative |= group_set
        inner_gates = sorted(
            (gate for gate in unassigned if leaves_of(gate) <= group_set),
            key=lambda gate: (len(leaves_of(gate)), gate),
        )
        unassigned -= set(inner_gates)
        join_gates = sorted(
            (gate for gate in unassigned if leaves_of(gate) <= cumulative),
            key=lambda gate: (len(leaves_of(gate)), gate),
        )
        unassigned -= set(join_gates)
        subgroup: list = list(group) + inner_gates
        if order is None:
            order = subgroup + join_gates
        else:
            nested = subgroup[0] if len(subgroup) == 1 else subgroup
            order = [order, nested, *join_gates]
    if unassigned:
        raise CompositionError(
            f"gates {sorted(unassigned)} observe blocks outside the decomposition"
        )
    assert order is not None
    return order


__all__ = ["hierarchical_order"]
