"""Composition-order helpers.

"The order in which the I/O-IMC models are composed is given by the user"
(Section 4 of the paper) — and choosing it well is what makes compositional
aggregation effective.  This module provides

* :class:`GateScheduler` — the *earliest-hiding* gate placement rule: every
  fault-tree gate is scheduled at the earliest point of a composition chain
  at which all of the non-gate blocks it (transitively) observes have been
  composed, so its signals can be hidden immediately.  The rule is shared by
  :func:`hierarchical_order` and the automated order search of
  :mod:`repro.planner`.
* :func:`hierarchical_order` — turns a *subsystem decomposition* (an ordered
  list of groups of basic blocks, e.g. "the processors", "controller set 1",
  "disk cluster 3", ...) into a full nested composition order: the blocks of
  each group are composed together first, gates are placed by the
  earliest-hiding rule, and the groups are chained left-deep, so that each
  step adds one small subsystem to the accumulated composite instead of
  multiplying two large halves.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..arcade.semantics import TranslatedModel
from ..errors import CompositionError
from .composer import CompositionOrder


class GateScheduler:
    """Earliest-hiding placement of fault-tree gates in a composition order.

    A gate observes a set of *leaf* blocks — the non-gate emitters of the
    signals it (transitively, through other gates) listens to.  The gate can
    be composed, and its own output immediately hidden, as soon as all of its
    leaves are part of the accumulated composite; composing it any later
    keeps its inputs unconstrained and its signals open.  This class answers
    the two questions both the hierarchical order builder and the planner's
    order search ask: *which leaves does this gate observe* and *which gates
    become schedulable once a given leaf set is composed*.
    """

    def __init__(self, translated: TranslatedModel) -> None:
        self.translated = translated
        blocks = translated.blocks
        self.gate_names = frozenset(translated.gates)
        self.non_gate_blocks = [
            name for name in blocks if name not in self.gate_names
        ]
        #: For every output signal, the block that emits it.
        self.emitter_of: dict[str, str] = {}
        for name, block in blocks.items():
            for action in block.signature.outputs:
                self.emitter_of[action] = name
        self._leaves: dict[str, frozenset[str]] = {}

    def direct_dependencies(self, gate: str) -> set[str]:
        """Blocks (gates included) emitting the signals ``gate`` listens to."""
        return {
            self.emitter_of[action]
            for action in self.translated.blocks[gate].signature.inputs
            if action in self.emitter_of
        }

    def ordered_dependencies(self, gate: str) -> list[str]:
        """Like :meth:`direct_dependencies`, in the gate's *input order*.

        The translator compiles the fault tree into voting gates whose input
        tuples preserve the source expression's child order; walking them in
        that order (instead of the unordered signature) reproduces the
        tree's construction sequence, which is what the planner's gate-tree
        seed needs.  Falls back to sorted dependencies for gates without a
        recorded :class:`~repro.arcade.semantics.gate_semantics.VotingGate`.
        """
        voting = self.translated.gates.get(gate) if self.translated.gates else None
        if voting is None:
            return sorted(self.direct_dependencies(gate))
        ordered: list[str] = []
        for gate_input in voting.inputs:
            for signal in gate_input.set_signals:
                source = self.emitter_of.get(signal)
                if source is not None and source not in ordered:
                    ordered.append(source)
        return ordered

    def leaves_of(self, gate: str, _trail: tuple[str, ...] = ()) -> frozenset[str]:
        """Non-gate blocks ``gate`` transitively observes."""
        cached = self._leaves.get(gate)
        if cached is not None:
            return cached
        if gate in _trail:
            raise CompositionError(f"cyclic gate dependency through {gate!r}")
        leaves: set[str] = set()
        for dependency in self.direct_dependencies(gate):
            if dependency in self.gate_names:
                leaves |= self.leaves_of(dependency, _trail + (gate,))
            else:
                leaves.add(dependency)
        frozen = frozenset(leaves)
        self._leaves[gate] = frozen
        return frozen

    def ready_gates(
        self, unassigned: Iterable[str], covered_leaves: set[str] | frozenset[str]
    ) -> list[str]:
        """Gates of ``unassigned`` whose leaves are all in ``covered_leaves``.

        Returned smallest-leaf-set first (ties broken by name) — the order in
        which they should be composed, so that a gate observing another
        gate's output is placed after it.
        """
        return sorted(
            (gate for gate in unassigned if self.leaves_of(gate) <= covered_leaves),
            key=lambda gate: (len(self.leaves_of(gate)), gate),
        )


def hierarchical_order(
    translated: TranslatedModel, leaf_groups: Sequence[Sequence[str]]
) -> CompositionOrder:
    """Build a nested composition order from a subsystem decomposition.

    Parameters
    ----------
    translated:
        The translated model (provides the block signatures and gate list).
    leaf_groups:
        Ordered groups of *non-gate* block names (components, repair units,
        spare management units).  Group entries may themselves be nested
        sequences — e.g. the balanced pairs of isomorphic siblings the
        cache-aware planner emits — which are carried into the resulting
        order verbatim, so the pair is composed (and reduced) before it
        joins the group's fold.  Together the groups must cover every
        non-gate block exactly once; the fault-tree gates created by the
        translator are inserted automatically.
    """
    blocks = translated.blocks
    scheduler = GateScheduler(translated)
    gate_names = scheduler.gate_names

    covered: set[str] = set()
    for group in leaf_groups:
        for name in flatten_order(list(group)):
            if name not in blocks:
                raise CompositionError(f"unknown block {name!r} in subsystem decomposition")
            if name in gate_names:
                raise CompositionError(
                    f"{name!r} is a fault-tree gate; gates are scheduled automatically"
                )
            if name in covered:
                raise CompositionError(f"block {name!r} appears in two subsystems")
            covered.add(name)
    missing = set(scheduler.non_gate_blocks) - covered
    if missing:
        raise CompositionError(
            f"subsystem decomposition does not cover block(s) {sorted(missing)}"
        )

    # Every gate is scheduled at the earliest point at which all the blocks it
    # observes (transitively) have been composed.  Gates whose leaves all lie
    # inside a single subsystem become part of that subsystem's *nested* group
    # (so the subsystem is composed and reduced on its own before it is joined
    # to the accumulated composite); gates spanning several subsystems are
    # placed at the join.
    cumulative: set[str] = set()
    unassigned = set(gate_names)
    order: CompositionOrder | None = None
    for group in leaf_groups:
        group_set = set(flatten_order(list(group)))
        cumulative |= group_set
        inner_gates = scheduler.ready_gates(unassigned, group_set)
        unassigned -= set(inner_gates)
        join_gates = scheduler.ready_gates(unassigned, cumulative)
        unassigned -= set(join_gates)
        subgroup: list = list(group) + inner_gates
        if order is None:
            order = subgroup + join_gates
        else:
            nested = subgroup[0] if len(subgroup) == 1 else subgroup
            order = [order, nested, *join_gates]
    if unassigned:
        raise CompositionError(
            f"gates {sorted(unassigned)} observe blocks outside the decomposition"
        )
    assert order is not None
    return order


def flatten_order(order: CompositionOrder | str) -> list[str]:
    """The block names of a (possibly nested) order, in composition sequence."""
    if isinstance(order, str):
        return [order]
    flat: list[str] = []
    for entry in order:
        flat.extend(flatten_order(entry))
    return flat


__all__ = ["GateScheduler", "flatten_order", "hierarchical_order"]
