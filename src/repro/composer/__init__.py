"""Compositional aggregation: composing and reducing the block I/O-IMCs."""

from .cache import CacheEntry, QuotientCache, SubtreeFingerprint, resolve_cache
from .composer import (
    REDUCE_POLICIES,
    REDUCTION_MODES,
    ComposedSystem,
    CompositionOrder,
    CompositionStatistics,
    CompositionStep,
    Composer,
    compose_model,
)
from .ordering import GateScheduler, flatten_order, hierarchical_order

__all__ = [
    "REDUCE_POLICIES",
    "REDUCTION_MODES",
    "CacheEntry",
    "ComposedSystem",
    "CompositionOrder",
    "CompositionStatistics",
    "CompositionStep",
    "Composer",
    "GateScheduler",
    "QuotientCache",
    "SubtreeFingerprint",
    "compose_model",
    "flatten_order",
    "hierarchical_order",
    "resolve_cache",
]
