"""Compositional aggregation: composing and reducing the block I/O-IMCs."""

from .composer import (
    ComposedSystem,
    CompositionOrder,
    CompositionStatistics,
    CompositionStep,
    Composer,
    compose_model,
)
from .ordering import hierarchical_order

__all__ = [
    "ComposedSystem",
    "CompositionOrder",
    "CompositionStatistics",
    "CompositionStep",
    "Composer",
    "compose_model",
    "hierarchical_order",
]
