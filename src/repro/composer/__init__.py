"""Compositional aggregation: composing and reducing the block I/O-IMCs."""

from .composer import (
    REDUCTION_MODES,
    ComposedSystem,
    CompositionOrder,
    CompositionStatistics,
    CompositionStep,
    Composer,
    compose_model,
)
from .ordering import GateScheduler, flatten_order, hierarchical_order

__all__ = [
    "REDUCTION_MODES",
    "ComposedSystem",
    "CompositionOrder",
    "CompositionStatistics",
    "CompositionStep",
    "Composer",
    "GateScheduler",
    "compose_model",
    "flatten_order",
    "hierarchical_order",
]
