"""Compositional aggregation of Arcade building blocks (Section 4).

The composer replaces the CADP-based "Composer tool" of the paper: it
incrementally composes the I/O-IMCs of the building blocks using the
parallel composition operator, hides every signal as soon as all of its
listeners have been composed in, and reduces the intermediate model after
every step (maximal progress, vanishing-state elimination and bisimulation
lumping).  This *compositional aggregation* is what keeps the state space
manageable; the statistics gathered along the way (largest intermediate
model, per-step sizes) reproduce the numbers reported in Sections 5.1.2 and
5.2.2 of the paper.

The composition order is given by the user as a (possibly nested) list of
block names — nested groups are composed and reduced first, mirroring the
hierarchical subsystem structure of the case studies — derived by a simple
greedy heuristic when no order is supplied, or searched automatically by
the cost-model-guided planner of :mod:`repro.planner` with
``order="auto"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..ctmc import CTMC, extract_ctmc, lump
from ..errors import CompositionError
from ..ioimc import IOIMC, compose, hide
from ..lumping import (
    eliminate_vanishing_chains,
    maximal_progress_cut,
    minimize_branching,
    minimize_strong,
    minimize_weak,
)
from ..arcade.semantics import TranslatedModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner uses composer)
    from ..planner import PlanReport

#: Composition orders are nested sequences of block names.
CompositionOrder = Sequence["str | CompositionOrder"]

#: The bisimulation variants the reduction pipeline can apply between steps.
REDUCTION_MODES = ("strong", "weak", "branching", "none")


@dataclass(frozen=True)
class CompositionStep:
    """Size and timing bookkeeping for one composition step."""

    description: str
    states_before_reduction: int
    transitions_before_reduction: int
    states_after_reduction: int
    transitions_after_reduction: int
    hidden_actions: tuple[str, ...]
    compose_seconds: float = 0.0
    reduce_seconds: float = 0.0
    reduced: bool = True

    @property
    def seconds(self) -> float:
        """Total wall-clock time of this step."""
        return self.compose_seconds + self.reduce_seconds


@dataclass
class CompositionStatistics:
    """Aggregated statistics of a full compositional-aggregation run."""

    steps: list[CompositionStep] = field(default_factory=list)
    final_reduce_seconds: float = 0.0

    def record(self, step: CompositionStep) -> None:
        self.steps.append(step)

    @property
    def largest_intermediate_states(self) -> int:
        """States of the largest I/O-IMC encountered during generation."""
        return max((step.states_before_reduction for step in self.steps), default=0)

    @property
    def largest_intermediate_transitions(self) -> int:
        """Transitions of the largest I/O-IMC encountered during generation."""
        return max((step.transitions_before_reduction for step in self.steps), default=0)

    @property
    def total_compose_seconds(self) -> float:
        """Wall-clock time spent building parallel products."""
        return sum(step.compose_seconds for step in self.steps)

    @property
    def total_reduce_seconds(self) -> float:
        """Wall-clock time spent in the reduction pipeline (incl. final pass)."""
        return (
            sum(step.reduce_seconds for step in self.steps) + self.final_reduce_seconds
        )

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of composition plus reduction."""
        return self.total_compose_seconds + self.total_reduce_seconds

    def as_table(self) -> list[dict[str, object]]:
        """Rows suitable for printing in benchmarks and EXPERIMENTS.md."""
        return [
            {
                "step": step.description,
                "states_before": step.states_before_reduction,
                "transitions_before": step.transitions_before_reduction,
                "states_after": step.states_after_reduction,
                "transitions_after": step.transitions_after_reduction,
                "hidden": len(step.hidden_actions),
                "compose_s": round(step.compose_seconds, 4),
                "reduce_s": round(step.reduce_seconds, 4),
            }
            for step in self.steps
        ]


@dataclass
class ComposedSystem:
    """Result of the compositional aggregation: the system I/O-IMC and CTMC."""

    ioimc: IOIMC
    ctmc: CTMC
    statistics: CompositionStatistics
    #: Search report of the order planner; only set for ``order="auto"`` runs.
    plan_report: "PlanReport | None" = None

    @property
    def ctmc_summary(self) -> dict[str, int]:
        return self.ctmc.summary()


class Composer:
    """Performs compositional aggregation on a translated Arcade model.

    Parameters
    ----------
    translated:
        The building-block I/O-IMCs and listener map produced by
        :func:`repro.arcade.semantics.translate_model`.
    order:
        Composition order as a (possibly nested) sequence of block names;
        nested groups are composed and reduced first, mirroring the
        hierarchical subsystem structure of the case studies.  ``None``
        falls back to the greedy heuristic of :meth:`default_order`; the
        string ``"auto"`` invokes the cost-model-guided order search of
        :func:`repro.planner.plan_order` (the resulting
        :class:`~repro.planner.PlanReport` is exposed as
        :attr:`plan_report` and on the returned :class:`ComposedSystem`).
    reduction:
        Bisimulation variant applied to every intermediate model:
        ``"strong"`` (default; always sound, preserves every measure),
        ``"branching"`` (inert-tau-abstracting — the equivalence CADP's
        minimisation uses in the paper's tool chain), ``"weak"``
        (tau-abstracting, the coarsest of the three) or ``"none"``.
    eliminate_vanishing:
        Collapse tau-only vanishing chains between composition steps
        (:func:`repro.lumping.eliminate_vanishing_chains`).
    lump_final_ctmc:
        Additionally lump the extracted CTMC modulo ordinary lumpability.
    reduce_every_n:
        Reduction *schedule*: run the reduction pipeline only on every n-th
        composition step.  ``1`` (default) reduces after every step — the
        paper's aggregation.  A sparser schedule trades larger intermediate
        products for fewer minimisation passes, which pays off when the
        blocks being merged share few actions; the per-step
        ``compose_seconds``/``reduce_seconds`` recorded in
        :class:`CompositionStatistics` are the data to tune it with.
    adaptive_reduction_states:
        Safety valve for sparse schedules: when set, an off-cycle step is
        reduced anyway as soon as the intermediate product exceeds this many
        states, so ``reduce_every_n > 1`` cannot let the state space
        explode.  ``None`` (default) disables the override.
    """

    def __init__(
        self,
        translated: TranslatedModel,
        *,
        order: CompositionOrder | str | None = None,
        reduction: str = "strong",
        eliminate_vanishing: bool = True,
        lump_final_ctmc: bool = True,
        reduce_every_n: int = 1,
        adaptive_reduction_states: int | None = None,
        plan_budget: int | None = None,
        plan_seed: int = 0,
    ) -> None:
        if reduction not in REDUCTION_MODES:
            raise CompositionError(
                f"unknown reduction {reduction!r} (expected one of {REDUCTION_MODES})"
            )
        if reduce_every_n < 1:
            raise CompositionError(
                f"reduce_every_n must be >= 1, got {reduce_every_n}"
            )
        if isinstance(order, str) and order != "auto":
            raise CompositionError(
                f"unknown order {order!r} (pass an explicit nested order, "
                'None for the greedy heuristic, or "auto" for the planner)'
            )
        self.translated = translated
        self.order = order
        #: Search budget / RNG seed forwarded to the planner for
        #: ``order="auto"`` (``None`` budget = the planner's default).
        self.plan_budget = plan_budget
        self.plan_seed = plan_seed
        #: The planner's :class:`~repro.planner.PlanReport` of the last
        #: ``order="auto"`` run (``None`` otherwise).
        self.plan_report: "PlanReport | None" = None
        self.reduction = reduction
        self.eliminate_vanishing = eliminate_vanishing
        self.lump_final_ctmc = lump_final_ctmc
        #: Reduce only every n-th composition step (1 = the paper's
        #: reduce-after-every-step aggregation).  Skipping reductions trades
        #: larger intermediate products for fewer minimisation passes, which
        #: pays off when the blocks being merged share few actions.
        self.reduce_every_n = reduce_every_n
        #: Adaptive override: when set, an off-cycle step is reduced anyway as
        #: soon as the intermediate product exceeds this many states, so a
        #: sparse reduction schedule cannot let the state space explode.
        self.adaptive_reduction_states = adaptive_reduction_states
        self.statistics = CompositionStatistics()
        self._composed_blocks: set[str] = set()
        self._steps_since_reduction = 0

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def compose(self) -> ComposedSystem:
        """Run the full pipeline: compose, hide, reduce, extract the CTMC."""
        # Fresh report per run: only an "auto" resolution below re-sets it, so
        # a re-run with a different order must not carry the old plan along.
        self.plan_report = None
        order = self._resolve_order()
        self._composed_blocks = set()
        self._steps_since_reduction = 0
        # Fresh statistics per run: compose() is re-runnable and must not
        # accumulate steps/timings across invocations.
        self.statistics = CompositionStatistics()
        system, _ = self._compose_group(order)
        missing = set(self.translated.blocks) - self._composed_blocks
        if missing:
            raise CompositionError(
                f"composition order does not cover block(s) {sorted(missing)}"
            )
        # Close the system: everything that is still visible can be hidden now.
        system = hide(system, system.signature.outputs)
        started = time.perf_counter()
        system = self._reduce(system)
        self.statistics.final_reduce_seconds += time.perf_counter() - started
        ctmc = extract_ctmc(system)
        if self.lump_final_ctmc:
            ctmc = lump(ctmc).quotient
        return ComposedSystem(
            ioimc=system,
            ctmc=ctmc,
            statistics=self.statistics,
            plan_report=self.plan_report,
        )

    def _resolve_order(self) -> CompositionOrder:
        """The order to compose in: explicit, planned (``"auto"``) or greedy."""
        if self.order is None:
            return self.default_order()
        if isinstance(self.order, str):  # validated to be "auto" in __init__
            from ..planner import plan_order  # late import: planner uses composer

            keywords = {} if self.plan_budget is None else {"budget": self.plan_budget}
            order, self.plan_report = plan_order(
                self.translated, seed=self.plan_seed, **keywords
            )
            return order
        return self.order

    def default_order(self) -> CompositionOrder:
        """Greedy composition order: prefer steps that close open signals.

        Starting from the smallest block, the heuristic repeatedly adds the
        block that allows the largest number of currently-open output signals
        to be hidden, breaking ties towards smaller blocks.  The case studies
        pass an explicit hierarchical order instead (as the paper's users do),
        but the heuristic gives sensible behaviour for ad-hoc models.
        """
        blocks = self.translated.blocks
        remaining = set(blocks)
        if not remaining:
            raise CompositionError("the translated model has no blocks to compose")
        start = min(remaining, key=lambda name: (blocks[name].num_states, name))
        order: list[str] = [start]
        remaining.remove(start)
        composed = {start}
        while remaining:
            def score(name: str) -> tuple[int, int, str]:
                candidate = composed | {name}
                closable = 0
                for block_name in candidate:
                    for action in blocks[block_name].signature.outputs:
                        listeners = self.translated.listeners_of(action)
                        if listeners and listeners <= candidate:
                            closable += 1
                shared = len(
                    blocks[name].signature.visible
                    & set().union(*(blocks[b].signature.visible for b in composed))
                )
                return (-closable, -shared, name)

            best = min(remaining, key=score)
            order.append(best)
            composed.add(best)
            remaining.remove(best)
        return order

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _compose_group(
        self, group: CompositionOrder | str
    ) -> tuple[IOIMC, frozenset[str]]:
        """Recursively compose a (nested) group of blocks.

        Returns the composite together with the set of block names it
        contains: hiding decisions must be taken against the blocks of *this*
        composite, not against everything composed so far — a nested group is
        built separately from the accumulated chain, and hiding one of its
        signals because a listener exists in the (not-yet-joined) accumulated
        composite would silence the synchronisation forever.
        """
        if isinstance(group, str):
            block = self.translated.blocks.get(group)
            if block is None:
                raise CompositionError(f"unknown block {group!r} in composition order")
            if group in self._composed_blocks:
                raise CompositionError(f"block {group!r} appears twice in the composition order")
            self._composed_blocks.add(group)
            return block, frozenset((group,))
        members = list(group)
        if not members:
            raise CompositionError("empty group in composition order")
        composite, blocks = self._compose_group(members[0])
        for member in members[1:]:
            block, member_blocks = self._compose_group(member)
            blocks |= member_blocks
            description = f"{composite.name} || {block.name}"
            compose_started = time.perf_counter()
            composite = compose(composite, block, name=description)
            before = composite.summary()
            composite, hidden_actions = self._hide_closed_signals(composite, blocks)
            compose_seconds = time.perf_counter() - compose_started
            should_reduce = self._should_reduce(before["states"])
            reduce_seconds = 0.0
            if should_reduce:
                reduce_started = time.perf_counter()
                composite = self._reduce(composite)
                reduce_seconds = time.perf_counter() - reduce_started
                self._steps_since_reduction = 0
            else:
                self._steps_since_reduction += 1
            after = composite.summary()
            self.statistics.record(
                CompositionStep(
                    description=description,
                    states_before_reduction=before["states"],
                    transitions_before_reduction=before["transitions"],
                    states_after_reduction=after["states"],
                    transitions_after_reduction=after["transitions"],
                    hidden_actions=tuple(hidden_actions),
                    compose_seconds=compose_seconds,
                    reduce_seconds=reduce_seconds,
                    reduced=should_reduce,
                )
            )
            # Keep the running composite's name short; the full history is in
            # the recorded statistics.
            composite = composite.renamed(
                f"composite[{len(self._composed_blocks)} blocks]"
            )
        return composite, blocks

    def _should_reduce(self, states_before: int) -> bool:
        """Apply the reduction policy to the current step.

        With ``reduce_every_n == 1`` (the default, and the paper's setup)
        every step is reduced.  A sparser schedule reduces on every n-th
        step, but the adaptive override kicks in whenever the intermediate
        product has grown past ``adaptive_reduction_states``.
        """
        if self.reduce_every_n <= 1:
            return True
        if self._steps_since_reduction + 1 >= self.reduce_every_n:
            return True
        threshold = self.adaptive_reduction_states
        return threshold is not None and states_before > threshold

    def _hide_closed_signals(
        self, composite: IOIMC, blocks: frozenset[str]
    ) -> tuple[IOIMC, list[str]]:
        """Hide every output whose listeners are all part of ``composite``.

        ``blocks`` are the block names making up ``composite``.  For a plain
        left-deep order this is everything composed so far; inside a nested
        group it is only the group's own blocks, so a signal whose listener
        lives in the accumulated composite stays open until the join.
        """
        hidable = []
        for action in sorted(composite.signature.outputs):
            listeners = self.translated.listeners_of(action)
            if listeners <= blocks:
                hidable.append(action)
        if not hidable:
            return composite, []
        return hide(composite, hidable), hidable

    def _reduce(self, automaton: IOIMC) -> IOIMC:
        """Apply the reduction pipeline to an intermediate model."""
        automaton = maximal_progress_cut(automaton)
        if self.eliminate_vanishing:
            automaton = eliminate_vanishing_chains(automaton)
        automaton = automaton.restrict_to_reachable()
        if self.reduction == "strong":
            automaton = minimize_strong(automaton).quotient
        elif self.reduction == "weak":
            automaton = minimize_weak(automaton).quotient
        elif self.reduction == "branching":
            automaton = minimize_branching(automaton).quotient
        return automaton


def compose_model(
    translated: TranslatedModel,
    *,
    order: CompositionOrder | str | None = None,
    reduction: str = "strong",
    eliminate_vanishing: bool = True,
    lump_final_ctmc: bool = True,
    reduce_every_n: int = 1,
    adaptive_reduction_states: int | None = None,
    plan_budget: int | None = None,
    plan_seed: int = 0,
) -> ComposedSystem:
    """One-call wrapper around :class:`Composer`.

    Accepts the same keyword arguments (see the :class:`Composer` docstring
    for the reduction policy — ``reduction``, ``reduce_every_n``,
    ``adaptive_reduction_states`` — and the order planner —
    ``order="auto"``, ``plan_budget``, ``plan_seed``) and returns the fully
    composed :class:`ComposedSystem` with its I/O-IMC, CTMC and per-step
    statistics.
    """
    composer = Composer(
        translated,
        order=order,
        reduction=reduction,
        eliminate_vanishing=eliminate_vanishing,
        lump_final_ctmc=lump_final_ctmc,
        reduce_every_n=reduce_every_n,
        adaptive_reduction_states=adaptive_reduction_states,
        plan_budget=plan_budget,
        plan_seed=plan_seed,
    )
    return composer.compose()


__all__ = [
    "ComposedSystem",
    "CompositionOrder",
    "CompositionStatistics",
    "CompositionStep",
    "Composer",
    "compose_model",
]
