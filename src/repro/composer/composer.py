"""Compositional aggregation of Arcade building blocks (Section 4).

The composer replaces the CADP-based "Composer tool" of the paper: it
incrementally composes the I/O-IMCs of the building blocks using the
parallel composition operator, hides every signal as soon as all of its
listeners have been composed in, and reduces the intermediate model after
every step (maximal progress, vanishing-state elimination and bisimulation
lumping).  This *compositional aggregation* is what keeps the state space
manageable; the statistics gathered along the way (largest intermediate
model, per-step sizes) reproduce the numbers reported in Sections 5.1.2 and
5.2.2 of the paper.

The composition order is given by the user as a (possibly nested) list of
block names — nested groups are composed and reduced first, mirroring the
hierarchical subsystem structure of the case studies — derived by a simple
greedy heuristic when no order is supplied, or searched automatically by
the cost-model-guided planner of :mod:`repro.planner` with
``order="auto"``.

With ``cache="on"`` (or a shared :class:`~repro.composer.cache.QuotientCache`
instance) the composer additionally memoises every step under an
isomorphism-aware key, so replicated subtrees — the DDS disk clusters, the
RCS pump lines — are composed and minimised once and every further copy is
rebased from the cache onto its concrete signal names (see
:mod:`repro.composer.cache` and ``docs/caching.md``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as PoolTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..ctmc import CTMC, extract_ctmc, lump
from ..errors import CompositionError, StateBudgetError
from ..ioimc import IOIMC, Signature, compose, hide
from ..ioimc.canonical import rebase_actions
from ..lumping import (
    eliminate_vanishing_chains,
    maximal_progress_cut,
    minimize_branching,
    minimize_strong,
    minimize_weak,
)
from ..arcade.semantics import TranslatedModel
from ..resilience.faults import active_fault, active_fault_plan, inject_faults
from ..resilience.retry import RecoveryEvent, RetryPolicy
from ..telemetry.sink import MemorySink
from ..telemetry.trace import Telemetry, current_telemetry, gauge_max, incr
from ..telemetry.trace import span as telemetry_span
from .cache import QuotientCache, SubtreeFingerprint, resolve_cache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner uses composer)
    from ..planner import CostParameters, PlanReport

#: Composition orders are nested sequences of block names.
CompositionOrder = Sequence["str | CompositionOrder"]

#: The bisimulation variants the reduction pipeline can apply between steps.
REDUCTION_MODES = ("strong", "weak", "branching", "none")

#: Reduction *scheduling* policies: reduce after every step (the paper's
#: aggregation), on a fixed ``reduce_every_n`` cycle, or adaptively from the
#: recorded shrinkage history.
REDUCE_POLICIES = ("always", "every_n", "adaptive")

#: Adaptive policy: how many recent reductions vote on the expected yield.
_ADAPTIVE_WINDOW = 2
#: Adaptive policy: minimum mean state shrinkage for reductions to keep paying.
_ADAPTIVE_MIN_SHRINKAGE = 0.10
#: Adaptive policy: probe with a real reduction after this many consecutive
#: skips, so a temporarily unprofitable reduction schedule can recover.
_ADAPTIVE_PROBE_EVERY = 4


@dataclass(frozen=True)
class CompositionStep:
    """Size and timing bookkeeping for one composition step."""

    description: str
    states_before_reduction: int
    transitions_before_reduction: int
    states_after_reduction: int
    transitions_after_reduction: int
    hidden_actions: tuple[str, ...]
    compose_seconds: float = 0.0
    reduce_seconds: float = 0.0
    reduced: bool = True
    #: Served from the quotient cache: the recorded sizes reproduce the
    #: uncached trajectory, the timings are the (tiny) rebase cost.
    cache_hit: bool = False
    #: *Net* wall-clock a hit saved: the original computation's cost minus
    #: the time spent serving (rebasing) the hit, floored at 0 (0 on
    #: misses).  Summing these per run — and, on a shared cache, across
    #: runs — reconciles exactly with ``QuotientCache.saved_seconds``.
    saved_seconds: float = 0.0
    #: How many leaf blocks each operand of this step contained; a hit with
    #: ``min(operand_blocks) > 1`` is an above-leaf (composite x composite
    #: or composite x subtree) join served from the cache.
    operand_blocks: tuple[int, int] = (1, 1)
    #: Why the reduction pipeline was skipped (``None`` when it ran):
    #: ``"schedule"`` for an off-cycle ``reduce_every_n`` step,
    #: ``"adaptive-low-yield"`` for the adaptive policy's skip decision.
    skip_reason: str | None = None

    @property
    def seconds(self) -> float:
        """Total wall-clock time of this step."""
        return self.compose_seconds + self.reduce_seconds


@dataclass
class CompositionStatistics:
    """Aggregated statistics of a full compositional-aggregation run."""

    steps: list[CompositionStep] = field(default_factory=list)
    final_reduce_seconds: float = 0.0
    #: Worker-pool size the run used (1 = fully serial).
    jobs: int = 1
    #: Subtree tasks re-submitted after a timeout or a pool break.
    worker_retries: int = 0
    #: Subtree tasks whose worker future exceeded the retry policy's deadline.
    worker_timeouts: int = 0
    #: Times the process pool broke (a worker died) and was recreated.
    pool_breaks: int = 0
    #: Subtree tasks composed serially in the parent after exhausting retries.
    serial_fallbacks: int = 0
    #: Every recovery action of the run, in the order it was taken — the
    #: never-silent record: a run that survived a fault says so here, in the
    #: ``resilience.*`` telemetry counters, and nowhere in its measures.
    recovery_events: list[RecoveryEvent] = field(default_factory=list)

    def record(self, step: CompositionStep) -> None:
        self.steps.append(step)

    def record_recovery(self, event: RecoveryEvent) -> None:
        self.recovery_events.append(event)
        incr(f"resilience.{event.kind}")

    @property
    def largest_intermediate_states(self) -> int:
        """States of the largest I/O-IMC encountered during generation."""
        return max((step.states_before_reduction for step in self.steps), default=0)

    @property
    def largest_intermediate_transitions(self) -> int:
        """Transitions of the largest I/O-IMC encountered during generation."""
        return max((step.transitions_before_reduction for step in self.steps), default=0)

    @property
    def total_compose_seconds(self) -> float:
        """Wall-clock time spent building parallel products."""
        return sum(step.compose_seconds for step in self.steps)

    @property
    def total_reduce_seconds(self) -> float:
        """Wall-clock time spent in the reduction pipeline (incl. final pass)."""
        return (
            sum(step.reduce_seconds for step in self.steps) + self.final_reduce_seconds
        )

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of composition plus reduction."""
        return self.total_compose_seconds + self.total_reduce_seconds

    @property
    def cache_hits(self) -> int:
        """Steps served from the quotient cache."""
        return sum(1 for step in self.steps if step.cache_hit)

    @property
    def cache_saved_seconds(self) -> float:
        """Net wall-clock this run's cache hits saved (original cost minus
        the serve time, per hit)."""
        return sum(step.saved_seconds for step in self.steps if step.cache_hit)

    @property
    def reductions_skipped(self) -> int:
        """Steps whose reduction the schedule or adaptive policy skipped."""
        return sum(1 for step in self.steps if not step.reduced)

    def as_table(self) -> list[dict[str, object]]:
        """Rows suitable for printing in benchmarks and EXPERIMENTS.md."""
        return [
            {
                "step": step.description,
                "states_before": step.states_before_reduction,
                "transitions_before": step.transitions_before_reduction,
                "states_after": step.states_after_reduction,
                "transitions_after": step.transitions_after_reduction,
                "hidden": len(step.hidden_actions),
                "compose_s": round(step.compose_seconds, 4),
                "reduce_s": round(step.reduce_seconds, 4),
                "cache_hit": step.cache_hit,
                "skip_reason": step.skip_reason,
            }
            for step in self.steps
        ]

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable summary — the schema the telemetry stream and
        the benchmark exporters share (per-step rows under ``"steps"``)."""
        return {
            "jobs": self.jobs,
            "num_steps": len(self.steps),
            "largest_intermediate_states": self.largest_intermediate_states,
            "largest_intermediate_transitions": self.largest_intermediate_transitions,
            "total_compose_seconds": self.total_compose_seconds,
            "total_reduce_seconds": self.total_reduce_seconds,
            "final_reduce_seconds": self.final_reduce_seconds,
            "total_seconds": self.total_seconds,
            "cache_hits": self.cache_hits,
            "cache_saved_seconds": self.cache_saved_seconds,
            "reductions_skipped": self.reductions_skipped,
            "worker_retries": self.worker_retries,
            "worker_timeouts": self.worker_timeouts,
            "pool_breaks": self.pool_breaks,
            "serial_fallbacks": self.serial_fallbacks,
            "recovery_events": [
                {
                    "kind": event.kind,
                    "key": event.key,
                    "attempt": event.attempt,
                    "detail": event.detail,
                }
                for event in self.recovery_events
            ],
            "steps": self.as_table(),
        }


@dataclass
class ComposedSystem:
    """Result of the compositional aggregation: the system I/O-IMC and CTMC."""

    ioimc: IOIMC
    ctmc: CTMC
    statistics: CompositionStatistics
    #: Search report of the order planner; only set for ``order="auto"`` runs.
    plan_report: "PlanReport | None" = None
    #: The quotient cache the run used (``None`` when caching was off).
    cache: QuotientCache | None = None

    @property
    def ctmc_summary(self) -> dict[str, int]:
        return self.ctmc.summary()


class Composer:
    """Performs compositional aggregation on a translated Arcade model.

    Parameters
    ----------
    translated:
        The building-block I/O-IMCs and listener map produced by
        :func:`repro.arcade.semantics.translate_model`.
    order:
        Composition order as a (possibly nested) sequence of block names;
        nested groups are composed and reduced first, mirroring the
        hierarchical subsystem structure of the case studies.  ``None``
        falls back to the greedy heuristic of :meth:`default_order`; the
        string ``"auto"`` invokes the cost-model-guided order search of
        :func:`repro.planner.plan_order` (the resulting
        :class:`~repro.planner.PlanReport` is exposed as
        :attr:`plan_report` and on the returned :class:`ComposedSystem`).
    reduction:
        Bisimulation variant applied to every intermediate model:
        ``"strong"`` (default; always sound, preserves every measure),
        ``"branching"`` (inert-tau-abstracting — the equivalence CADP's
        minimisation uses in the paper's tool chain), ``"weak"``
        (tau-abstracting, the coarsest of the three) or ``"none"``.
    eliminate_vanishing:
        Collapse tau-only vanishing chains between composition steps
        (:func:`repro.lumping.eliminate_vanishing_chains`).
    lump_final_ctmc:
        Additionally lump the extracted CTMC modulo ordinary lumpability.
    cache:
        Isomorphism-aware memoisation policy: ``"on"`` (a fresh
        :class:`~repro.composer.cache.QuotientCache`), ``"off"``/``None``
        (default, no memoisation) or an existing cache instance to share
        hits across several runs.  Replicated subtrees are composed and
        reduced once; further copies are rebased from the cache via their
        canonical renaming witness, reproducing the uncached pipeline's
        results exactly (see ``docs/caching.md``).
    reduce_policy:
        Reduction *schedule*: ``"always"`` (default; the paper's
        reduce-after-every-step aggregation), ``"every_n"`` (reduce on
        every ``reduce_every_n``-th step only) or ``"adaptive"`` (skip
        reductions while the recent reductions bought less than 10% state
        shrinkage, probing again after a few skips; skip decisions are
        recorded per step in :class:`CompositionStatistics`).  ``None``
        derives the policy from ``reduce_every_n`` for backwards
        compatibility: ``"every_n"`` when it exceeds 1, else ``"always"``.
    reduce_every_n:
        Cycle length of the ``"every_n"`` policy.  ``1`` reduces after
        every step.  A sparser schedule trades larger intermediate products
        for fewer minimisation passes, which pays off when the blocks being
        merged share few actions; the per-step
        ``compose_seconds``/``reduce_seconds`` recorded in
        :class:`CompositionStatistics` are the data to tune it with.
    adaptive_reduction_states:
        Safety valve for the sparse policies: when set, an off-cycle (or
        adaptively skipped) step is reduced anyway as soon as the
        intermediate product exceeds this many states, so skipping cannot
        let the state space explode.  ``None`` (default) disables the
        override.
    plan_parameters:
        Cost-model damping parameters for ``order="auto"``: a
        :class:`~repro.planner.CostParameters` instance or a path to a JSON
        file persisted by :func:`repro.planner.save_cost_parameters` (e.g.
        the per-family files the benchmarks export).  ``None`` uses the
        built-in DDS/RCS-fitted defaults.
    jobs:
        Worker-pool size for parallel subtree aggregation.  With ``jobs >
        1`` the independent nested groups of the composition order (the
        affinity-group subtrees) are composed, hidden and reduced in a
        :class:`~concurrent.futures.ProcessPoolExecutor`, their statistics
        and cache entries merged back, and only the left-deep join spine
        runs serially — bit-identical to the serial run (see
        ``docs/architecture.md``).  Only the ``"always"`` reduce policy
        parallelises (the sparse schedules are stateful across the whole
        step sequence); other policies, flat orders, and single-subtree
        orders fall back to the serial path.
    retry:
        :class:`~repro.resilience.RetryPolicy` bounding the parallel
        dispatch's recovery from crashed (``BrokenProcessPool``) and hung
        (per-task timeout) workers: bounded retry with backoff, then — when
        the policy allows — graceful serial fallback in the parent.  Every
        recovery is recorded in :class:`CompositionStatistics` and the
        ``resilience.*`` telemetry counters; the composed result stays
        bit-identical to an undisturbed run because the serial fallback and
        the workers run the very same fold.  ``None`` uses the defaults
        (3 attempts, no deadline, serial fallback on).  See
        ``docs/robustness.md``.
    state_budget:
        Hard ceiling on any step's *pre-reduction* product size, in states.
        A step that exceeds it raises
        :class:`~repro.errors.StateBudgetError` (a
        :class:`~repro.errors.CompositionError`) instead of consuming
        unbounded memory — the sweep driver's per-point isolation turns
        that into an error row.  Checked identically on cache hits (from
        the entry's recorded pre-reduction size) and in worker processes.
        ``None`` (default) disables the check.
    """

    def __init__(
        self,
        translated: TranslatedModel,
        *,
        order: CompositionOrder | str | None = None,
        reduction: str = "strong",
        eliminate_vanishing: bool = True,
        lump_final_ctmc: bool = True,
        cache: QuotientCache | str | None = None,
        reduce_policy: str | None = None,
        reduce_every_n: int = 1,
        adaptive_reduction_states: int | None = None,
        plan_budget: int | None = None,
        plan_seed: int = 0,
        plan_parameters: "CostParameters | str | None" = None,
        jobs: int = 1,
        retry: "RetryPolicy | None" = None,
        state_budget: int | None = None,
    ) -> None:
        if reduction not in REDUCTION_MODES:
            raise CompositionError(
                f"unknown reduction {reduction!r} (expected one of {REDUCTION_MODES})"
            )
        if reduce_every_n < 1:
            raise CompositionError(
                f"reduce_every_n must be >= 1, got {reduce_every_n}"
            )
        if jobs < 1:
            raise CompositionError(f"jobs must be >= 1, got {jobs}")
        if state_budget is not None and state_budget < 1:
            raise CompositionError(
                f"state_budget must be >= 1, got {state_budget}"
            )
        if reduce_policy is None:
            reduce_policy = "every_n" if reduce_every_n > 1 else "always"
        if reduce_policy not in REDUCE_POLICIES:
            raise CompositionError(
                f"unknown reduce_policy {reduce_policy!r} "
                f"(expected one of {REDUCE_POLICIES})"
            )
        if isinstance(order, str) and order != "auto":
            raise CompositionError(
                f"unknown order {order!r} (pass an explicit nested order, "
                'None for the greedy heuristic, or "auto" for the planner)'
            )
        self.translated = translated
        self.order = order
        #: Search budget / RNG seed forwarded to the planner for
        #: ``order="auto"`` (``None`` budget = the planner's default).
        self.plan_budget = plan_budget
        self.plan_seed = plan_seed
        self.plan_parameters = plan_parameters
        #: The planner's :class:`~repro.planner.PlanReport` of the last
        #: ``order="auto"`` run (``None`` otherwise).
        self.plan_report: "PlanReport | None" = None
        self.reduction = reduction
        self.eliminate_vanishing = eliminate_vanishing
        self.lump_final_ctmc = lump_final_ctmc
        #: The resolved quotient cache (``None`` when caching is off).  The
        #: same instance survives re-runs of :meth:`compose`, so repeated
        #: pipelines (availability + no-repair reliability, growth sweeps)
        #: compound their hits.
        self.cache: QuotientCache | None = resolve_cache(cache)
        #: Reduction schedule, see the class docstring.
        self.reduce_policy = reduce_policy
        self.reduce_every_n = reduce_every_n
        #: Size override: when set, a skipped step is reduced anyway as soon
        #: as the intermediate product exceeds this many states.
        self.adaptive_reduction_states = adaptive_reduction_states
        #: Worker-pool size for parallel subtree aggregation (1 = serial).
        self.jobs = jobs
        #: Recovery bounds of the parallel dispatch (defaults when ``None``).
        self.retry = retry if retry is not None else RetryPolicy()
        #: Pre-reduction state ceiling per step (``None`` = unbounded).
        self.state_budget = state_budget
        self.statistics = CompositionStatistics()
        self._composed_blocks: set[str] = set()
        self._steps_since_reduction = 0
        #: Fractional state shrinkage of the recent reduced steps (the
        #: adaptive policy's evidence).
        self._reduction_history: list[float] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def compose(self) -> ComposedSystem:
        """Run the full pipeline: compose, hide, reduce, extract the CTMC."""
        with telemetry_span(
            "compose.run",
            reduction=self.reduction,
            reduce_policy=self.reduce_policy,
            jobs=self.jobs,
            cache="on" if self.cache is not None else "off",
            blocks=len(self.translated.blocks),
        ) as run_span:
            # Fresh report per run: only an "auto" resolution below re-sets it,
            # so a re-run with a different order must not carry the old plan
            # along.
            self.plan_report = None
            order = self._resolve_order()
            self._composed_blocks = set()
            self._steps_since_reduction = 0
            self._reduction_history = []
            # Fresh statistics per run: compose() is re-runnable and must not
            # accumulate steps/timings across invocations.  (The quotient
            # cache, in contrast, deliberately survives re-runs.)
            self.statistics = CompositionStatistics()
            if self.jobs > 1 and self.reduce_policy == "always":
                system, _, _ = self._compose_parallel(order)
            else:
                system, _, _ = self._compose_group(order)
            missing = set(self.translated.blocks) - self._composed_blocks
            if missing:
                raise CompositionError(
                    f"composition order does not cover block(s) {sorted(missing)}"
                )
            # Close the system: everything still visible can be hidden now.
            system = hide(system, system.signature.outputs)
            started = time.perf_counter()
            with telemetry_span("compose.final_reduce", reduction=self.reduction):
                system = self._reduce(system)
            self.statistics.final_reduce_seconds += time.perf_counter() - started
            ctmc = extract_ctmc(system)
            if self.lump_final_ctmc:
                ctmc = lump(ctmc).quotient
            run_span.set(
                steps=len(self.statistics.steps),
                peak_states=self.statistics.largest_intermediate_states,
                cache_hits=self.statistics.cache_hits,
                ctmc_states=ctmc.num_states,
            )
            gauge_max(
                "compose.peak_states", self.statistics.largest_intermediate_states
            )
            return ComposedSystem(
                ioimc=system,
                ctmc=ctmc,
                statistics=self.statistics,
                plan_report=self.plan_report,
                cache=self.cache,
            )

    def _resolve_order(self) -> CompositionOrder:
        """The order to compose in: explicit, planned (``"auto"``) or greedy."""
        if self.order is None:
            return self.default_order()
        if isinstance(self.order, str):  # validated to be "auto" in __init__
            from ..planner import plan_order  # late import: planner uses composer

            keywords: dict = {} if self.plan_budget is None else {"budget": self.plan_budget}
            if self.plan_parameters is not None:
                keywords["parameters"] = self.plan_parameters
            if self.cache is not None:
                # Let the search price the 2nd..N-th copy of an isomorphic
                # sibling group at ~0 (the cache will serve them), and hand
                # the cache itself over so folds it already stores — from a
                # shared pre-warmed cache — discount the *first* copy too.
                keywords["cache_aware"] = True
                keywords["cache"] = self.cache
                keywords["reduction"] = self.reduction
                keywords["eliminate_vanishing"] = self.eliminate_vanishing
            order, self.plan_report = plan_order(
                self.translated, seed=self.plan_seed, **keywords
            )
            return order
        return self.order

    def default_order(self) -> CompositionOrder:
        """Greedy composition order: prefer steps that close open signals.

        Starting from the smallest block, the heuristic repeatedly adds the
        block that allows the largest number of currently-open output signals
        to be hidden, breaking ties towards smaller blocks.  The case studies
        pass an explicit hierarchical order instead (as the paper's users do),
        but the heuristic gives sensible behaviour for ad-hoc models.
        """
        blocks = self.translated.blocks
        remaining = set(blocks)
        if not remaining:
            raise CompositionError("the translated model has no blocks to compose")
        start = min(remaining, key=lambda name: (blocks[name].num_states, name))
        order: list[str] = [start]
        remaining.remove(start)
        composed = {start}
        while remaining:
            def score(name: str) -> tuple[int, int, str]:
                candidate = composed | {name}
                closable = 0
                for block_name in candidate:
                    for action in blocks[block_name].signature.outputs:
                        listeners = self.translated.listeners_of(action)
                        if listeners and listeners <= candidate:
                            closable += 1
                shared = len(
                    blocks[name].signature.visible
                    & set().union(*(blocks[b].signature.visible for b in composed))
                )
                return (-closable, -shared, name)

            best = min(remaining, key=score)
            order.append(best)
            composed.add(best)
            remaining.remove(best)
        return order

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _compose_group(
        self, group: CompositionOrder | str
    ) -> tuple[IOIMC, frozenset[str], SubtreeFingerprint | None]:
        """Recursively compose a (nested) group of blocks.

        Returns the composite together with the set of block names it
        contains — hiding decisions must be taken against the blocks of
        *this* composite, not against everything composed so far (a nested
        group is built separately from the accumulated chain, and hiding one
        of its signals because a listener exists in the not-yet-joined
        accumulated composite would silence the synchronisation forever) —
        and, when caching, the subtree's renaming-invariant fingerprint.
        """
        if isinstance(group, str):
            block = self.translated.blocks.get(group)
            if block is None:
                raise CompositionError(f"unknown block {group!r} in composition order")
            if group in self._composed_blocks:
                raise CompositionError(f"block {group!r} appears twice in the composition order")
            self._composed_blocks.add(group)
            fingerprint = (
                self.cache.leaf_fingerprint(block) if self.cache is not None else None
            )
            return block, frozenset((group,)), fingerprint
        members = list(group)
        if not members:
            raise CompositionError("empty group in composition order")
        composite, blocks, fingerprint = self._compose_group(members[0])
        for member in members[1:]:
            block, member_blocks, block_fingerprint = self._compose_group(member)
            operand_blocks = (len(blocks), len(member_blocks))
            blocks |= member_blocks
            composite, fingerprint = self._step(
                composite, fingerprint, block, block_fingerprint, blocks, operand_blocks
            )
            # Keep the running composite's name short; the full history is in
            # the recorded statistics.  The count is *local* to this subtree
            # (not the global composed-block tally), so a subtree composed in
            # a worker process names its steps identically to a serial run.
            composite = composite.renamed(f"composite[{len(blocks)} blocks]")
        return composite, blocks, fingerprint

    # ------------------------------------------------------------------ #
    # parallel subtree aggregation
    # ------------------------------------------------------------------ #
    def _compose_parallel(
        self, order: CompositionOrder
    ) -> tuple[IOIMC, frozenset[str], SubtreeFingerprint | None]:
        """Compose the order's independent subtrees in a process pool.

        The left-deep spine of the nested order is unrolled into its
        top-level items (see :func:`_spine_items`); every non-leaf item is a
        self-contained subtree — its hiding schedule depends only on its own
        blocks and the full-model listener table — so the subtrees can be
        composed, hidden and reduced concurrently and joined serially
        afterwards, reproducing the serial run bit for bit.  With the cache
        on, only one representative per structural task class is dispatched;
        duplicate subtrees recompose in the parent through the ordinary
        cached path (every step a verified hit) after the worker caches have
        been merged, which also reproduces the serial hit pattern.
        """
        items = _spine_items(order)
        tasks = [
            (index, item)
            for index, item in enumerate(items)
            if not isinstance(item, str)
        ]
        if len(tasks) < 2:
            return self._compose_group(order)
        dispatch: list[tuple[int, CompositionOrder]] = []
        if self.cache is not None:
            seen: set = set()
            for index, item in tasks:
                key = self._task_key(item)
                if key is not None:
                    if key in seen:
                        continue
                    seen.add(key)
                dispatch.append((index, item))
        else:
            dispatch = tasks
        if len(dispatch) < 2:
            return self._compose_group(order)

        workers = min(self.jobs, len(dispatch))
        self.statistics.jobs = workers
        telemetry = current_telemetry()
        results: dict[int, _SubtreeResult] = {}
        with telemetry_span(
            "compose.parallel", workers=workers, subtrees=len(dispatch)
        ) as parallel_span:
            self._run_dispatch(dispatch, workers, telemetry is not None, results)
            if self.statistics.recovery_events:
                parallel_span.set(
                    worker_retries=self.statistics.worker_retries,
                    worker_timeouts=self.statistics.worker_timeouts,
                    pool_breaks=self.statistics.pool_breaks,
                    serial_fallbacks=self.statistics.serial_fallbacks,
                )

            # Merge the worker-side observability alongside the statistics and
            # cache merges below: worker span events splice into this trace
            # (re-parented onto the compose.parallel span), worker metrics
            # snapshots fold into the ambient registry — in item order, so the
            # merged stream is deterministic across worker counts.
            if telemetry is not None:
                for index in sorted(results):
                    result = results[index]
                    telemetry.ingest(
                        result.events, parent_id=parallel_span.span_id
                    )
                    telemetry.metrics.merge_snapshot(result.metrics_snapshot)

        # Merge the worker caches in item order — not completion order — so
        # the parent cache's contents and counters are deterministic across
        # runs and worker counts.
        if self.cache is not None:
            for index in sorted(results):
                result = results[index]
                if result.cache is None:
                    continue
                if self.cache.merge_from(result.cache):
                    incr("cache.merges")
                else:
                    # A cross-process digest collision failed verification:
                    # the worker's entries were not imported, and no
                    # descendant key may be derived from its identity.
                    result.fingerprint = None

        composite: IOIMC | None = None
        fingerprint: SubtreeFingerprint | None = None
        blocks: frozenset[str] = frozenset()
        for index, item in enumerate(items):
            result = results.get(index)
            if result is not None:
                duplicates = self._composed_blocks & result.blocks
                if duplicates:
                    raise CompositionError(
                        f"block {sorted(duplicates)[0]!r} appears twice in the "
                        "composition order"
                    )
                self._composed_blocks |= result.blocks
                self.statistics.steps.extend(result.steps)
                part, part_blocks, part_fingerprint = (
                    result.ioimc,
                    result.blocks,
                    result.fingerprint,
                )
            else:
                part, part_blocks, part_fingerprint = self._compose_group(item)
            if composite is None:
                composite, blocks, fingerprint = part, part_blocks, part_fingerprint
                continue
            operand_blocks = (len(blocks), len(part_blocks))
            blocks |= part_blocks
            composite, fingerprint = self._step(
                composite, fingerprint, part, part_fingerprint, blocks, operand_blocks
            )
            composite = composite.renamed(f"composite[{len(blocks)} blocks]")
        assert composite is not None  # len(items) >= 2 here
        return composite, blocks, fingerprint

    def _subtree_payload(
        self, item, traced: bool, task_id: str | None, attempt: int, fault_plan
    ):
        """The picklable argument tuple of one subtree task.

        ``task_id``/``attempt`` key the worker-side injection sites
        (``worker.crash``, ``worker.timeout``); the serial fallback passes
        ``task_id=None`` and ``fault_plan=None`` so those sites stay dead in
        the parent process — the parent-side sites (``compose.blowup``)
        still see the ambient plan through the contextvar.
        """
        return (
            self._subtree_translated(item),
            item,
            self.reduction,
            self.eliminate_vanishing,
            self.cache is not None,
            traced,
            self.state_budget,
            task_id,
            attempt,
            fault_plan,
        )

    def _run_dispatch(
        self,
        dispatch: list,
        workers: int,
        traced: bool,
        results: "dict[int, _SubtreeResult]",
    ) -> None:
        """Run the subtree tasks through the pool under the retry policy.

        Fault model: a dispatched task either returns, raises a library
        error, stalls past the policy deadline, or takes the pool down
        (``BrokenProcessPool``).  Timeouts and pool breaks are *recoverable*
        — the task is re-submitted up to ``max_attempts`` times (a broken
        pool is recreated first), then composed serially in the parent when
        the policy allows.  A library exception raised *by* the worker is
        deterministic — retrying cannot change it — and propagates
        immediately.  Every recovery is recorded on the statistics and the
        ``resilience.*`` counters; none changes the composed result, because
        workers, retries and the serial fallback all run the identical fold.

        On any escaping exception — including ``KeyboardInterrupt`` — the
        pool is torn down hard (``cancel_futures`` plus ``terminate`` on
        live workers), so an aborted run leaves no orphan processes behind.
        """
        policy = self.retry
        fault_plan = active_fault_plan()
        statistics = self.statistics
        pending: dict[int, tuple] = {index: (item, 0) for index, item in dispatch}
        stalled = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while pending:
                futures = []
                for index in sorted(pending):
                    item, attempt = pending[index]
                    delay = policy.backoff(attempt)
                    if delay > 0.0:
                        time.sleep(delay)
                    futures.append(
                        (
                            index,
                            pool.submit(
                                _compose_subtree_worker,
                                self._subtree_payload(
                                    item,
                                    traced,
                                    f"subtree:{index}",
                                    attempt,
                                    fault_plan,
                                ),
                            ),
                        )
                    )
                failures: dict[int, tuple[str, str]] = {}
                pool_broken = False
                for index, future in futures:
                    if pool_broken:
                        # The pool died earlier in this round: harvest what
                        # finished, mark the rest as casualties of the break.
                        if (
                            future.done()
                            and not future.cancelled()
                            and future.exception() is None
                        ):
                            results[index] = future.result()
                            del pending[index]
                        else:
                            failures[index] = (
                                "pool_broken",
                                "process pool broke during the round",
                            )
                        continue
                    try:
                        results[index] = future.result(
                            timeout=policy.timeout_seconds
                        )
                        del pending[index]
                    except PoolTimeout:
                        # The stalled worker keeps its slot until it finishes;
                        # its late result is discarded (the pool is killed at
                        # the end instead of drained).
                        stalled = True
                        statistics.worker_timeouts += 1
                        failures[index] = (
                            "timeout",
                            f"no result within {policy.timeout_seconds}s",
                        )
                    except BrokenProcessPool as error:
                        pool_broken = True
                        failures[index] = ("pool_broken", repr(error))
                if pool_broken:
                    statistics.pool_breaks += 1
                    statistics.record_recovery(
                        RecoveryEvent(
                            kind="pool_broken",
                            key="pool",
                            attempt=-1,
                            detail="a worker died; recreating the pool",
                        )
                    )
                    _terminate_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=workers)
                for index in sorted(failures):
                    kind, detail = failures[index]
                    item, attempt = pending[index]
                    if kind == "timeout":
                        statistics.record_recovery(
                            RecoveryEvent(
                                kind="timeout",
                                key=f"subtree:{index}",
                                attempt=attempt,
                                detail=detail,
                            )
                        )
                    if attempt + 1 < policy.max_attempts:
                        statistics.worker_retries += 1
                        statistics.record_recovery(
                            RecoveryEvent(
                                kind="retry",
                                key=f"subtree:{index}",
                                attempt=attempt + 1,
                                detail=f"re-dispatch after {kind}",
                            )
                        )
                        pending[index] = (item, attempt + 1)
                    elif policy.serial_fallback:
                        statistics.serial_fallbacks += 1
                        statistics.record_recovery(
                            RecoveryEvent(
                                kind="serial_fallback",
                                key=f"subtree:{index}",
                                attempt=attempt,
                                detail=f"attempts exhausted after {kind}; "
                                "composing in the parent",
                            )
                        )
                        results[index] = _compose_subtree_worker(
                            self._subtree_payload(item, traced, None, 0, None)
                        )
                        del pending[index]
                    else:
                        raise CompositionError(
                            f"subtree task {index} failed after "
                            f"{policy.max_attempts} attempt(s) ({kind}: {detail}) "
                            "and serial fallback is disabled"
                        )
        except BaseException:
            _terminate_pool(pool)
            raise
        if stalled:
            _terminate_pool(pool)
        else:
            pool.shutdown(wait=True)

    def _task_key(self, item: "CompositionOrder | str"):
        """Structural identity of one subtree task (leaf digests + shape).

        ``None`` disables deduplication for subtrees containing a leaf the
        cache cannot fingerprint.  The key is a dispatch heuristic only:
        falsely merged tasks cannot corrupt anything (the "duplicate"
        recomposes in the parent through the verified cache path, missing
        where its steps differ), a false split merely costs a redundant
        worker.
        """
        if isinstance(item, str):
            block = self.translated.blocks.get(item)
            if block is None:
                raise CompositionError(f"unknown block {item!r} in composition order")
            fingerprint = self.cache.leaf_fingerprint(block)
            return None if fingerprint is None else fingerprint.key
        parts = []
        for member in item:
            key = self._task_key(member)
            if key is None:
                return None
            parts.append(key)
        return tuple(parts)

    def _subtree_translated(self, item: CompositionOrder) -> TranslatedModel:
        """The restricted model one worker composes against.

        Carries only the subtree's blocks, but the *full model's* listener
        table — a signal observed outside the subtree must stay open until
        the join, exactly as in the serial composer's hiding rule.
        """
        blocks: dict[str, IOIMC] = {}
        for name in _flatten_names(item):
            block = self.translated.blocks.get(name)
            if block is None:
                raise CompositionError(f"unknown block {name!r} in composition order")
            blocks[name] = block
        listener_table: dict[str, frozenset[str]] = {}
        for block in blocks.values():
            for action in block.signature.all_actions:
                listeners = self.translated.listeners_of(action)
                if listeners:
                    listener_table[action] = listeners
        return TranslatedModel(
            model=None,  # workers never consult the Arcade source model
            blocks=blocks,
            top_gate="",
            gates={},
            _listener_table=listener_table,
        )

    def _step(
        self,
        left: IOIMC,
        left_fingerprint: SubtreeFingerprint | None,
        right: IOIMC,
        right_fingerprint: SubtreeFingerprint | None,
        blocks: frozenset[str],
        operand_blocks: tuple[int, int] = (1, 1),
    ) -> tuple[IOIMC, SubtreeFingerprint | None]:
        """One binary step: compose, hide, reduce — or serve it from the cache."""
        description = f"{left.name} || {right.name}"
        with telemetry_span("compose.step", step=description) as step_span:
            return self._step_inner(
                left,
                left_fingerprint,
                right,
                right_fingerprint,
                blocks,
                operand_blocks,
                description,
                step_span,
            )

    def _step_inner(
        self,
        left: IOIMC,
        left_fingerprint: SubtreeFingerprint | None,
        right: IOIMC,
        right_fingerprint: SubtreeFingerprint | None,
        blocks: frozenset[str],
        operand_blocks: tuple[int, int],
        description: str,
        step_span,
    ) -> tuple[IOIMC, SubtreeFingerprint | None]:
        hidable = self._hidable_signals(left.signature, right.signature, blocks)
        cache = self.cache
        plan = None
        if cache is not None and left_fingerprint is not None and right_fingerprint is not None:
            plan = cache.plan_step(left_fingerprint, right_fingerprint, hidable)

        compose_started = time.perf_counter()
        built: tuple[IOIMC, dict] | None = None

        def ensure_built() -> tuple[IOIMC, dict]:
            nonlocal built
            if built is None:
                product = compose(left, right, name=description)
                before = product.summary()
                built = (hide(product, hidable), before)
            return built

        def states_before() -> int:
            if built is None and plan is not None:
                peeked = cache.peek_before(plan)
                if peeked is not None:
                    return peeked[0]
            return ensure_built()[1]["states"]

        should_reduce, skip_reason = self._reduce_decision(states_before)

        key = None
        entry = None
        if plan is not None:
            key = cache.result_key(
                plan,
                reduced=should_reduce,
                reduction=self.reduction,
                eliminate_vanishing=self.eliminate_vanishing,
            )
            if built is None:
                entry = cache.get(key)

        if entry is not None:
            # The budget applies to the *pre-reduction* product a cold run
            # would have built — the entry recorded its size, so a capped
            # run behaves identically with the cache on or off.
            self._check_budget(description, entry.states_before)
            # Cache hit: rebase the stored quotient onto this subtree's
            # concrete signal names; no product, no refinement.
            rename = {
                old: new for old, new in zip(entry.slots, plan.slots) if old != new
            }
            if rename:
                composite = rebase_actions(entry.automaton, rename, name=description)
            else:
                composite = entry.automaton.renamed(description)
            # Net savings: what the original computation cost minus what
            # serving the hit just cost.  ``QuotientCache.saved_seconds``
            # accumulates exactly these per-hit amounts, so the lifetime
            # counter of a shared cache equals the sum of the per-run
            # ``cache_saved_seconds`` — the two reports cannot drift apart.
            serve_seconds = time.perf_counter() - compose_started
            saved_seconds = max(entry.cost_seconds - serve_seconds, 0.0)
            cache.hits += 1
            cache.saved_seconds += saved_seconds
            incr("cache.hits")
            incr("cache.saved_seconds", saved_seconds)
            step = CompositionStep(
                description=description,
                states_before_reduction=entry.states_before,
                transitions_before_reduction=entry.transitions_before,
                states_after_reduction=entry.states_after,
                transitions_after_reduction=entry.transitions_after,
                hidden_actions=tuple(hidable),
                compose_seconds=serve_seconds,
                reduce_seconds=0.0,
                reduced=should_reduce,
                cache_hit=True,
                saved_seconds=saved_seconds,
                operand_blocks=operand_blocks,
                skip_reason=skip_reason,
            )
            step_span.set(
                states_before=entry.states_before,
                states_after=entry.states_after,
                cache_hit=True,
                reduced=should_reduce,
            )
            self._note_reduction(should_reduce, entry.states_before, entry.states_after)
            self.statistics.record(step)
            return composite, SubtreeFingerprint(key, plan.slots)

        composite, before = ensure_built()
        self._check_budget(description, before["states"])
        compose_seconds = time.perf_counter() - compose_started
        reduce_seconds = 0.0
        if should_reduce:
            reduce_started = time.perf_counter()
            composite = self._reduce(composite)
            reduce_seconds = time.perf_counter() - reduce_started
        after = composite.summary()
        next_fingerprint = None
        if plan is not None and key is not None:
            cache.misses += 1
            incr("cache.misses")
            if cache.store(
                key,
                plan,
                composite,
                states_before=before["states"],
                transitions_before=before["transitions"],
                compose_seconds=compose_seconds,
                reduce_seconds=reduce_seconds,
            ):
                incr("cache.stores")
                next_fingerprint = SubtreeFingerprint(key, plan.slots)
        step = CompositionStep(
            description=description,
            states_before_reduction=before["states"],
            transitions_before_reduction=before["transitions"],
            states_after_reduction=after["states"],
            transitions_after_reduction=after["transitions"],
            hidden_actions=tuple(hidable),
            compose_seconds=compose_seconds,
            reduce_seconds=reduce_seconds,
            reduced=should_reduce,
            operand_blocks=operand_blocks,
            skip_reason=skip_reason,
        )
        step_span.set(
            states_before=before["states"],
            states_after=after["states"],
            cache_hit=False,
            reduced=should_reduce,
        )
        gauge_max("compose.peak_states", before["states"])
        self._note_reduction(should_reduce, before["states"], after["states"])
        self.statistics.record(step)
        return composite, next_fingerprint

    def _check_budget(self, description: str, states: int) -> None:
        """Enforce the pre-reduction state ceiling on one step.

        Only live when ``state_budget`` is set; the ``compose.blowup``
        injection site (keyed by the step description) then inflates the
        observed size, so chaos tests can trigger a deterministic
        :class:`~repro.errors.StateBudgetError` on an otherwise small model.
        """
        budget = self.state_budget
        if budget is None:
            return
        observed = float(states)
        fault = active_fault("compose.blowup", key=description)
        if fault is not None:
            observed = observed * fault.factor
            incr("resilience.fault.blowup")
        if observed > budget:
            inflated = " (inflated by an injected blowup)" if fault is not None else ""
            raise StateBudgetError(
                f"step {description!r}: intermediate product of {states} "
                f"states{inflated} exceeds the state budget of {budget}"
            )

    def _note_reduction(self, reduced: bool, before: int, after: int) -> None:
        """Update the schedule counter and the adaptive shrinkage history."""
        if reduced:
            self._steps_since_reduction = 0
            if before > 0:
                self._reduction_history.append(1.0 - after / before)
        else:
            self._steps_since_reduction += 1

    def _reduce_decision(self, states_before) -> tuple[bool, str | None]:
        """Apply the reduction policy to the current step.

        ``states_before`` is a *callable* returning the intermediate
        product's state count — invoked only when the decision actually
        needs the size (the size-threshold override), so a cache hit whose
        policy does not consult it never builds the product at all.
        Returns ``(reduce?, skip reason)``.
        """
        if self.reduce_policy == "always":
            return True, None
        threshold = self.adaptive_reduction_states
        if self.reduce_policy == "every_n":
            if self._steps_since_reduction + 1 >= self.reduce_every_n:
                return True, None
            if threshold is not None and states_before() > threshold:
                return True, None
            return False, "schedule"
        # Adaptive: reduce while reductions keep shrinking the model; once
        # the recent reductions bought less than the minimum yield, skip —
        # but probe again after a few skips, and never let the product grow
        # past the size override.
        if self._steps_since_reduction + 1 >= _ADAPTIVE_PROBE_EVERY:
            return True, None
        window = self._reduction_history[-_ADAPTIVE_WINDOW:]
        if not window or sum(window) / len(window) >= _ADAPTIVE_MIN_SHRINKAGE:
            return True, None
        if threshold is not None and states_before() > threshold:
            return True, None
        return False, "adaptive-low-yield"

    def _hidable_signals(
        self, left: Signature, right: Signature, blocks: frozenset[str]
    ) -> list[str]:
        """Outputs of ``left || right`` whose listeners are all in ``blocks``.

        The composite's output set is exactly the union of the operands'
        outputs (outputs win over inputs under signature composition), so
        the hiding schedule can be decided before the product is built —
        which is what lets a cache hit skip the product entirely.  For a
        plain left-deep order ``blocks`` is everything composed so far;
        inside a nested group it is only the group's own blocks, so a signal
        whose listener lives in the accumulated composite stays open until
        the join.
        """
        return [
            action
            for action in sorted(left.outputs | right.outputs)
            if self.translated.listeners_of(action) <= blocks
        ]

    def _reduce(self, automaton: IOIMC) -> IOIMC:
        """Apply the reduction pipeline to an intermediate model."""
        automaton = maximal_progress_cut(automaton)
        if self.eliminate_vanishing:
            automaton = eliminate_vanishing_chains(automaton)
        automaton = automaton.restrict_to_reachable()
        if self.reduction == "strong":
            automaton = minimize_strong(automaton).quotient
        elif self.reduction == "weak":
            automaton = minimize_weak(automaton).quotient
        elif self.reduction == "branching":
            automaton = minimize_branching(automaton).quotient
        return automaton


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without draining it, leaving no orphan workers.

    Used on abort (``KeyboardInterrupt``/SIGTERM, escaping errors), after a
    ``BrokenProcessPool`` and when timed-out workers are still stalled at
    the end of dispatch: queued futures are cancelled and live worker
    processes terminated, then reaped with a short join.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=1.0)


def _flatten_names(item: "CompositionOrder | str") -> list[str]:
    """Block names of a (possibly nested) order item, in composition sequence."""
    if isinstance(item, str):
        return [item]
    names: list[str] = []
    for member in item:
        names.extend(_flatten_names(member))
    return names


def _spine_items(order: CompositionOrder) -> list:
    """Unroll a left-deep nested order into its top-level spine items.

    The composer's fold of ``[prev, nested, *gates]`` is equivalent to
    walking ``_spine_items(prev) + [nested, *gates]`` left to right: hiding
    decisions depend only on the accumulated block set, which grows
    identically either way.  A leading run of leaf names (the first
    subsystem group of a hierarchical order) is kept together as one item
    so it can be dispatched as a subtree of its own.
    """
    items = list(order)
    if not items:
        raise CompositionError("empty group in composition order")
    first = items[0]
    if isinstance(first, str):
        split = 1
        while split < len(items) and isinstance(items[split], str):
            split += 1
        head = first if split == 1 else items[:split]
        return [head] + items[split:]
    return _spine_items(first) + items[1:]


@dataclass
class _SubtreeResult:
    """What one worker sends back for its subtree."""

    ioimc: IOIMC
    blocks: frozenset
    fingerprint: SubtreeFingerprint | None
    steps: tuple
    cache: QuotientCache | None
    #: Telemetry span events the worker's session buffered (empty when the
    #: parent ran without telemetry); spliced into the parent trace via
    #: :meth:`repro.telemetry.trace.Telemetry.ingest`.
    events: tuple = ()
    #: The worker registry's snapshot, folded into the parent's metrics.
    metrics_snapshot: dict | None = None


def _compose_subtree_worker(payload) -> _SubtreeResult:
    """Process-pool entry point: compose one independent subtree.

    The payload carries a restricted :class:`TranslatedModel` (the subtree's
    blocks plus the full-model listener table), the reduction settings, the
    state budget, and the fault-injection context: the parent's
    :class:`~repro.resilience.FaultPlan` (contextvars do not cross the
    process boundary, so the plan travels in the payload and is re-activated
    here) plus this task's stable id and retry attempt, which key the
    worker-side injection sites — ``worker.crash`` fail-stops the process
    (the parent observes a ``BrokenProcessPool``), ``worker.timeout`` stalls
    it past the parent's deadline.  The serial fallback calls this function
    in-process with ``task_id=None``, which keeps both sites dead.

    The worker runs the ordinary serial fold — against a fresh cache when
    the parent run caches, so within-subtree replicas still hit — and
    returns the composite, its per-step statistics and the cache for the
    parent to merge.  When the parent run is traced, the worker runs its own
    memory-sink telemetry session and ships the buffered span events and
    metrics snapshot back alongside.
    """
    (
        translated,
        item,
        reduction,
        eliminate_vanishing,
        use_cache,
        traced,
        state_budget,
        task_id,
        attempt,
        fault_plan,
    ) = payload
    with inject_faults(fault_plan):
        if task_id is not None:
            if active_fault("worker.crash", key=task_id, attempt=attempt) is not None:
                # Fail-stop, as a real worker crash would be: no unwinding, no
                # result, the parent's pool breaks.
                os._exit(17)
            stall = active_fault("worker.timeout", key=task_id, attempt=attempt)
            if stall is not None:
                time.sleep(stall.sleep_seconds)
        composer = Composer(
            translated,
            order=item,
            reduction=reduction,
            eliminate_vanishing=eliminate_vanishing,
            cache="on" if use_cache else None,
            state_budget=state_budget,
        )
        events: tuple = ()
        metrics_snapshot: dict | None = None
        if traced:
            telemetry = Telemetry(MemorySink())
            with telemetry.activate():
                with telemetry.span("compose.subtree", subtree_blocks=len(_flatten_names(item))):
                    ioimc, blocks, fingerprint = composer._compose_group(item)
            events = tuple(telemetry.export_events())
            metrics_snapshot = telemetry.metrics.snapshot() or None
        else:
            ioimc, blocks, fingerprint = composer._compose_group(item)
    cache = composer.cache
    if cache is not None:
        # The leaf-fingerprint memo is keyed by object identity, which is
        # meaningless across a process boundary; drop it from the payload.
        cache._leaf_fingerprints.clear()
    return _SubtreeResult(
        ioimc=ioimc,
        blocks=blocks,
        fingerprint=fingerprint,
        steps=tuple(composer.statistics.steps),
        cache=cache,
        events=events,
        metrics_snapshot=metrics_snapshot,
    )


def compose_model(
    translated: TranslatedModel,
    *,
    order: CompositionOrder | str | None = None,
    reduction: str = "strong",
    eliminate_vanishing: bool = True,
    lump_final_ctmc: bool = True,
    cache: QuotientCache | str | None = None,
    reduce_policy: str | None = None,
    reduce_every_n: int = 1,
    adaptive_reduction_states: int | None = None,
    plan_budget: int | None = None,
    plan_seed: int = 0,
    plan_parameters: "CostParameters | str | None" = None,
    jobs: int = 1,
    retry: "RetryPolicy | None" = None,
    state_budget: int | None = None,
) -> ComposedSystem:
    """One-call wrapper around :class:`Composer`.

    Accepts the same keyword arguments (see the :class:`Composer` docstring
    for the reduction policy — ``reduction``, ``reduce_policy``,
    ``reduce_every_n``, ``adaptive_reduction_states`` — the quotient cache
    — ``cache`` — the order planner — ``order="auto"``, ``plan_budget``,
    ``plan_seed``, ``plan_parameters`` — and the resilience bounds —
    ``retry``, ``state_budget``) and returns the fully composed
    :class:`ComposedSystem` with its I/O-IMC, CTMC and per-step statistics.
    """
    composer = Composer(
        translated,
        order=order,
        reduction=reduction,
        eliminate_vanishing=eliminate_vanishing,
        lump_final_ctmc=lump_final_ctmc,
        cache=cache,
        reduce_policy=reduce_policy,
        reduce_every_n=reduce_every_n,
        adaptive_reduction_states=adaptive_reduction_states,
        plan_budget=plan_budget,
        plan_seed=plan_seed,
        plan_parameters=plan_parameters,
        jobs=jobs,
        retry=retry,
        state_budget=state_budget,
    )
    return composer.compose()


__all__ = [
    "ComposedSystem",
    "CompositionOrder",
    "CompositionStatistics",
    "CompositionStep",
    "Composer",
    "REDUCE_POLICIES",
    "REDUCTION_MODES",
    "compose_model",
]
