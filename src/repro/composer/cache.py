"""Isomorphism-aware memoisation of compositional-aggregation steps.

The paper's case studies are built from *replicated* subsystems — six
identical disk clusters in the DDS, duplicated pump lines in the RCS — yet
the plain :class:`~repro.composer.Composer` composes and minimises every
copy from scratch.  :class:`QuotientCache` removes that redundancy: each
composition step (parallel product, hiding, reduction pipeline) is memoised
under a key that identifies the step *up to consistent signal renaming*, so
the second through N-th copies of a replicated subtree are served from the
cache and merely *rebased* onto their concrete signal names.

How a step is identified
------------------------
Every cached subtree carries a :class:`SubtreeFingerprint`:

* ``key`` — for a leaf block, the *positional-form* digest of its I/O-IMC:
  a name-free encoding in which actions are numbered by first structural
  use (the order their edges appear in the state-numbered transition
  tables).  Unlike the search-based canonical form of
  :mod:`repro.ioimc.canonical`, the positional form costs one pass even on
  automata with large symmetry orbits (an 8-disk FCFS repair queue has
  10^5 states and a full automorphism group over the disks — refining that
  to a discrete canonical partition is more expensive than composing it),
  and its slot order follows the generation order of the translator, which
  is exactly how replicated instances align.  Because the positional form
  is *not* a decision procedure for isomorphism, every leaf joining an
  existing digest class is **verified**: its edges are renamed through the
  slot pairing and compared, exactly, against the class representative —
  a failed verification simply disables caching through that leaf.  For a
  composite, the key is a hash derived *algebraically* from the operand
  keys and the step descriptor (below) — large intermediate products are
  never themselves fingerprinted.
* ``slots`` — the concrete visible action names of this instance, listed in
  slot order.  Two subtrees with equal keys are isomorphic via the
  slot-wise pairing of their ``slots`` (the renaming witness).

A binary step ``left || right ; hide H ; reduce`` is keyed on

* the operand keys,
* the synchronisation pattern expressed in canonical coordinates — the set
  of ``(left slot, right slot)`` pairs that carry the same concrete name,
* the hidden-signal set expressed as slots of the (pre-hiding) composite
  alphabet, and
* the reduction applied: the bisimulation mode and the
  vanishing-elimination flag when the step was reduced, or a mode-free
  ``raw`` tag when the reduction was skipped (an unreduced product does not
  depend on the mode, so sparse-schedule runs share entries across modes).

Soundness
---------
Equal keys mean both subtrees were built by the *identical* sequence of
compose/hide/reduce operations (in slot coordinates) from leaves whose
isomorphism was explicitly verified.  All three operations commute with
consistent action renaming, and none of the engines' results depend on
concrete names (state numbering comes from exploration and
first-occurrence orders over states; partitions are unique coarsest
fixpoints), so the cached result differs from a recomputation by exactly
the slot-wise renaming — which
:func:`repro.ioimc.canonical.rebase_actions` applies on a hit.  A cache hit
therefore returns precisely what the uncached pipeline would have built;
the differential suite pins this (cache on vs off) across the full corpus.

Entries additionally remember the step's pre-reduction sizes and the
wall-clock originally spent, so statistics recorded on a hit reproduce the
uncached trajectory (the golden ``largest_intermediate_states`` is
unchanged) and the per-step ``saved_seconds`` can be reported.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..ioimc import IOIMC, TAU
from ..ioimc.actions import ActionKind, natural_sort_key
from ..ioimc.canonical import _KIND_CODE, encode_renumbered


@dataclass(frozen=True)
class SubtreeFingerprint:
    """Renaming-invariant identity of one composed (or leaf) subtree."""

    #: Canonical digest (leaf) or derived step hash (composite).
    key: str
    #: Concrete visible action names of this instance, in canonical slot order.
    slots: tuple[str, ...]


@dataclass(frozen=True)
class StepPlan:
    """A composition step expressed in canonical (slot) coordinates."""

    #: Hash over (operand keys, sync pairs, hidden slots): the mode-free part
    #: of the step identity.
    base: str
    #: Concrete visible names of the resulting composite (post-hiding).
    slots: tuple[str, ...]


@dataclass(frozen=True)
class CacheEntry:
    """One memoised step result, in its store-time concrete names."""

    automaton: IOIMC
    slots: tuple[str, ...]
    states_before: int
    transitions_before: int
    states_after: int
    transitions_after: int
    compose_seconds: float
    reduce_seconds: float

    @property
    def cost_seconds(self) -> float:
        """Wall-clock originally paid for this step (what a hit saves)."""
        return self.compose_seconds + self.reduce_seconds


class QuotientCache:
    """Memoises composition-step results up to consistent signal renaming.

    A single instance may be shared across several :class:`Composer` runs
    (e.g. the availability and no-repair reliability pipelines of one
    evaluator, or the instances of a growth-curve sweep); sharing is safe
    because keys identify steps structurally, independent of the model they
    came from.
    """

    def __init__(self) -> None:
        self._entries: dict[str, CacheEntry] = {}
        #: Pre-reduction sizes per step base, for reduction-policy decisions
        #: that need the product size before deciding which variant to fetch.
        self._before_sizes: dict[str, tuple[int, int]] = {}
        #: Keyed by the automaton *object* (identity hash): keeps the leaf
        #: alive while memoised, so a recycled ``id()`` can never serve a
        #: stale fingerprint for a structurally unrelated automaton.
        self._leaf_fingerprints: dict[IOIMC, SubtreeFingerprint | None] = {}
        #: First leaf seen per positional digest: the representative every
        #: later leaf of the class is verified against.
        self._leaf_representatives: dict[str, tuple[IOIMC, tuple[str, ...]]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Lifetime *net* savings: for every hit this cache ever served —
        #: across all runs sharing it — the original computation's cost
        #: minus the serve (rebase) time, floored at 0.  By construction
        #: this equals the sum of the per-run
        #: ``CompositionStatistics.cache_saved_seconds``, so the two reports
        #: reconcile exactly however many runs share the instance.
        self.saved_seconds = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # fingerprints and keys
    # ------------------------------------------------------------------ #
    def leaf_fingerprint(self, automaton: IOIMC) -> SubtreeFingerprint | None:
        """Fingerprint of a leaf block (cached per automaton object).

        Returns ``None`` — disabling caching for every subtree containing
        this leaf — when the block owns internal actions other than ``tau``
        (such names could not be rebased: internals are never renamed) or
        when the leaf's positional digest collides with a class whose
        representative it does not verify against.  Translator-built
        replicas pass both guards; anything else just forgoes caching.
        """
        cached = self._leaf_fingerprints.get(automaton, _UNSET)
        if cached is not _UNSET:
            return cached
        fingerprint = self._fingerprint_leaf(automaton)
        self._leaf_fingerprints[automaton] = fingerprint
        return fingerprint

    def _fingerprint_leaf(self, automaton: IOIMC) -> SubtreeFingerprint | None:
        if automaton.signature.internals - {TAU}:
            return None
        digest, slots = positional_form(automaton)
        representative = self._leaf_representatives.get(digest)
        if representative is None:
            self._leaf_representatives[digest] = (automaton, slots)
        else:
            reference, reference_slots = representative
            if reference is not automaton and not _verified_isomorphic(
                automaton, slots, reference, reference_slots
            ):
                return None
        return SubtreeFingerprint(key="leaf:" + digest, slots=slots)

    def plan_step(
        self,
        left: SubtreeFingerprint,
        right: SubtreeFingerprint,
        hidable: list[str],
    ) -> StepPlan | None:
        """Express one binary step in canonical coordinates.

        ``hidable`` is the (sorted) list of output signals the composer will
        hide right after the product.  Returns ``None`` when the step cannot
        be canonicalised (a hidable name missing from the operand slots —
        impossible for composer-generated steps, guarded defensively).
        """
        right_index = {name: position for position, name in enumerate(right.slots)}
        sync = tuple(
            (position, right_index[name])
            for position, name in enumerate(left.slots)
            if name in right_index
        )
        shared = {left.slots[position] for position, _ in sync}
        union = list(left.slots) + [
            name for name in right.slots if name not in shared
        ]
        slot_of = {name: position for position, name in enumerate(union)}
        hidden_slots = []
        for name in hidable:
            position = slot_of.get(name)
            if position is None:
                return None
            hidden_slots.append(position)
        # Hiding is applied as a set: the key must not depend on the order
        # the concrete names happen to sort in (replicas sort differently).
        hidden_slots.sort()
        hidden = set(hidable)
        digest = hashlib.sha256(
            f"step|{left.key}|{right.key}|sync={sync}|hide={tuple(hidden_slots)}".encode()
        ).hexdigest()
        return StepPlan(
            base=digest,
            slots=tuple(name for name in union if name not in hidden),
        )

    @staticmethod
    def result_key(
        plan: StepPlan, *, reduced: bool, reduction: str, eliminate_vanishing: bool
    ) -> str:
        """Dictionary key of one step variant.

        Unreduced steps are plain products — independent of the bisimulation
        mode — and share a mode-free key.
        """
        if not reduced:
            return plan.base + "|raw"
        return plan.base + f"|{reduction}|v={int(eliminate_vanishing)}"

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> CacheEntry | None:
        return self._entries.get(key)

    def peek_before(self, plan: StepPlan) -> tuple[int, int] | None:
        """Pre-reduction ``(states, transitions)`` of this step, if known.

        Lets the reduction policy decide reduce-vs-skip on a would-be hit
        without building the product.
        """
        return self._before_sizes.get(plan.base)

    def store(
        self,
        key: str,
        plan: StepPlan,
        automaton: IOIMC,
        *,
        states_before: int,
        transitions_before: int,
        compose_seconds: float,
        reduce_seconds: float,
    ) -> bool:
        """Memoise a freshly computed step result.

        Returns ``False`` — and poisons nothing — when the result violates a
        cacheability guard (non-tau internal actions, or a visible alphabet
        diverging from the planned slots, which would mean the slot algebra
        no longer mirrors the real composition).  A ``False`` return tells
        the composer to drop the subtree's fingerprint so no descendant key
        is derived from an unverified identity.
        """
        signature = automaton.signature
        if signature.internals - {TAU}:
            return False
        if set(plan.slots) != set(signature.visible):
            return False
        summary = automaton.summary()
        self._entries[key] = CacheEntry(
            automaton=automaton,
            slots=plan.slots,
            states_before=states_before,
            transitions_before=transitions_before,
            states_after=summary["states"],
            transitions_after=summary["transitions"],
            compose_seconds=compose_seconds,
            reduce_seconds=reduce_seconds,
        )
        self._before_sizes.setdefault(
            plan.base, (states_before, transitions_before)
        )
        self.stores += 1
        return True

    # ------------------------------------------------------------------ #
    # merging (parallel subtree aggregation)
    # ------------------------------------------------------------------ #
    def merge_from(self, other: "QuotientCache") -> bool:
        """Import a worker cache's entries and counters into this cache.

        The parallel composer gives every worker a fresh cache and merges
        them back in deterministic (spine) order, so duplicate subtrees the
        dispatcher did not send out are served in the parent exactly as a
        serial run would have served them.

        Digest classes are anchored by their first representative.  Where
        both caches know a digest, the two representatives are verified
        isomorphic *before anything is imported*; a failed verification —
        a cross-process digest collision — aborts the whole import (the
        worker's step keys were derived from the colliding identity) and
        returns ``False`` so the caller can drop the worker's fingerprint.
        Entries already present keep the incumbent: first-stored witnesses
        stay authoritative for later rebasing.
        """
        for digest, (candidate, candidate_slots) in other._leaf_representatives.items():
            mine = self._leaf_representatives.get(digest)
            if mine is not None and not _verified_isomorphic(
                candidate, candidate_slots, mine[0], mine[1]
            ):
                return False
        for digest, representative in other._leaf_representatives.items():
            self._leaf_representatives.setdefault(digest, representative)
        for key, entry in other._entries.items():
            self._entries.setdefault(key, entry)
        for base, sizes in other._before_sizes.items():
            self._before_sizes.setdefault(base, sizes)
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.saved_seconds += other.saved_seconds
        return True

    # ------------------------------------------------------------------ #
    # persistence hooks (see repro.resilience.diskcache)
    # ------------------------------------------------------------------ #
    def entries(self) -> dict[str, CacheEntry]:
        """Snapshot of the memoised step entries, keyed as stored.

        The on-disk persistence layer iterates this; leaf fingerprints and
        representatives are *not* part of the snapshot — they recompute
        deterministically from the actual leaves of the next run, and the
        algebraic step keys derived from them match by construction.
        """
        return dict(self._entries)

    def restore(self, key: str, entry: CacheEntry) -> None:
        """Re-insert one persisted entry without touching the counters.

        Counter state travels separately (the persistence layer restores the
        saved ``hits``/``misses``/``stores`` block), so re-loading a cache
        and then resuming a run reproduces the per-evaluation counter deltas
        of the uninterrupted run exactly.
        """
        self._entries[key] = entry
        base = key.split("|", 1)[0]
        self._before_sizes.setdefault(
            base, (entry.states_before, entry.transitions_before)
        )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, float | int]:
        """Hit/miss counters (for benchmarks and the CLIs)."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "saved_seconds": round(self.saved_seconds, 4),
        }

    def snapshot(self) -> tuple[int, int, int, float]:
        """Current ``(hits, misses, stores, saved_seconds)`` counters.

        Callers that share one cache across many evaluations (the sweep
        engine evaluates thousands of points against a single instance) take
        a snapshot before and after each evaluation and report the
        difference as that evaluation's cache traffic.
        """
        return (self.hits, self.misses, self.stores, self.saved_seconds)


_UNSET = object()


def positional_form(automaton: IOIMC) -> tuple[str, tuple[str, ...]]:
    """Name-free digest + slot order of a leaf block, in one pass.

    Actions are renumbered by first structural use — the position of their
    first edge in the state-numbered transition tables — with ties (unused
    actions) broken by kind and natural name order.  The digest encodes the
    renumbered structure exactly (states, initial, labels, kinds, every
    edge, every rate bit) through the shared
    :func:`repro.ioimc.canonical.encode_renumbered`; equal digests are a
    *candidate* match that :func:`_verified_isomorphic` confirms before the
    class is trusted.
    """
    index = automaton.index()
    interactive = index.interactive_csr
    num_actions = len(index.actions)

    first_use = np.full(num_actions, interactive.num_edges, dtype=np.int64)
    actions = interactive.action.astype(np.int64)
    if len(actions):
        np.minimum.at(first_use, actions, np.arange(len(actions), dtype=np.int64))
    order = sorted(
        range(num_actions),
        key=lambda aid: (
            int(first_use[aid]),
            _KIND_CODE.get(index.kinds[aid], ";"),
            natural_sort_key(index.actions[aid]),
        ),
    )
    slot_of = np.empty(num_actions, dtype=np.int64)
    slot_of[order] = np.arange(num_actions, dtype=np.int64)

    digest = encode_renumbered(
        automaton,
        index,
        version="ioimc-positional-v1",
        state_of=None,  # leaves keep their generation state numbering
        action_of=slot_of,
        action_order=order,
    )
    slots = tuple(
        index.actions[aid]
        for aid in order
        if index.kinds[aid] is not ActionKind.INTERNAL
    )
    return digest, slots


def _verified_isomorphic(
    candidate: IOIMC,
    candidate_slots: tuple[str, ...],
    reference: IOIMC,
    reference_slots: tuple[str, ...],
) -> bool:
    """Check that renaming ``candidate`` slot-wise yields exactly ``reference``.

    Exact check over the identity state numbering (replicated instances are
    generated in the same state order): equal state counts, initial states,
    labels, slot kinds, interactive edge sets under the renaming, and
    bit-equal Markovian rows.  Deliberately strict — a failure only costs
    caching, never correctness.
    """
    if (
        candidate.num_states != reference.num_states
        or candidate.initial != reference.initial
        or candidate.labels != reference.labels
        or len(candidate_slots) != len(reference_slots)
    ):
        return False
    candidate_signature = candidate.signature
    reference_signature = reference.signature
    rename = dict(zip(candidate_slots, reference_slots))
    for old, new in rename.items():
        if candidate_signature.kind_of(old) is not reference_signature.kind_of(new):
            return False
    candidate_index = candidate.index()
    reference_index = reference.index()
    c_int = candidate_index.interactive_csr
    r_int = reference_index.interactive_csr
    if c_int.num_edges != r_int.num_edges:
        return False
    remap = np.fromiter(
        (
            reference_index.id_of.get(rename.get(name, name), -1)
            for name in candidate_index.actions
        ),
        dtype=np.int64,
        count=len(candidate_index.actions),
    )
    if (remap[c_int.action] < 0).any():
        return False

    def sorted_triples(source, action, target):
        order = np.lexsort((target, action, source))
        return source[order], action[order], target[order]

    c_triples = sorted_triples(
        c_int.source.astype(np.int64), remap[c_int.action], c_int.target.astype(np.int64)
    )
    r_triples = sorted_triples(
        r_int.source.astype(np.int64),
        r_int.action.astype(np.int64),
        r_int.target.astype(np.int64),
    )
    if not all(np.array_equal(a, b) for a, b in zip(c_triples, r_triples)):
        return False
    c_markov = candidate_index.markovian_csr()
    r_markov = reference_index.markovian_csr()
    if c_markov.num_edges != r_markov.num_edges:
        return False

    def sorted_rates(csr):
        order = np.lexsort((csr.rate, csr.target, csr.source))
        return (
            csr.source[order].astype(np.int64),
            csr.target[order].astype(np.int64),
            csr.rate[order],
        )

    return all(
        np.array_equal(a, b) for a, b in zip(sorted_rates(c_markov), sorted_rates(r_markov))
    )


def resolve_cache(cache: "QuotientCache | str | None") -> QuotientCache | None:
    """Normalise the ``cache=`` policy argument of the composer stack.

    ``"on"`` creates a fresh :class:`QuotientCache`, ``"off"``/``None``
    disables caching, and an existing instance is passed through (sharing
    it across runs compounds the hits).
    """
    if cache is None:
        return None
    if isinstance(cache, QuotientCache):
        return cache
    if cache == "on":
        return QuotientCache()
    if cache == "off":
        return None
    raise ValueError(
        f'unknown cache policy {cache!r} (expected "on", "off", None or a '
        "QuotientCache instance)"
    )


__all__ = [
    "CacheEntry",
    "QuotientCache",
    "StepPlan",
    "SubtreeFingerprint",
    "positional_form",
    "resolve_cache",
]
