"""Phase-type distributions for time-to-failure and time-to-repair.

The Arcade syntax (Section 3.5 of the paper) allows "in general, any
phase-type distribution" for the ``TIME-TO-FAILURES`` and ``TIME-TO-REPAIRS``
lines; the reactor-cooling-system case study uses Erlang-2 distributions for
the pumps.  A (continuous) phase-type distribution is the distribution of the
time to absorption of a small CTMC; embedding one into a basic component or
repair unit simply means inlining that small CTMC into the component's
I/O-IMC.

This module provides the canonical acyclic representations used by the
translation — :class:`Exponential`, :class:`Erlang`, :class:`HyperExponential`
and the general :class:`PhaseType` — together with the numerics needed by the
tests and the simulator (mean, variance, cdf, sampling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import linalg

from ..errors import ModelError


@dataclass(frozen=True)
class PhaseType:
    """A continuous phase-type distribution.

    Parameters
    ----------
    initial:
        Probability of starting in each phase (must sum to one).
    transitions:
        ``(source_phase, rate, target_phase)`` triples describing movement
        between transient phases.
    completions:
        ``(phase, rate)`` pairs describing absorption (i.e. the event — a
        failure or the end of a repair — actually happening).
    name:
        Optional human readable description used when serialising models.
    """

    initial: tuple[float, ...]
    transitions: tuple[tuple[int, float, int], ...]
    completions: tuple[tuple[int, float], ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.initial:
            raise ModelError("a phase-type distribution needs at least one phase")
        if abs(sum(self.initial) - 1.0) > 1e-9:
            raise ModelError("initial phase probabilities must sum to one")
        phases = self.num_phases
        for source, rate, target in self.transitions:
            if not (0 <= source < phases and 0 <= target < phases):
                raise ModelError("phase transition endpoint out of range")
            if rate <= 0:
                raise ModelError("phase transition rates must be positive")
            if source == target:
                raise ModelError("phase self-loops are not allowed")
        for phase, rate in self.completions:
            if not 0 <= phase < phases:
                raise ModelError("completion phase out of range")
            if rate <= 0:
                raise ModelError("completion rates must be positive")
        if not self.completions:
            raise ModelError("a phase-type distribution must be able to complete")

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def num_phases(self) -> int:
        """Number of transient phases."""
        return len(self.initial)

    def scaled(self, factor: float) -> "PhaseType":
        """Distribution with every rate multiplied by ``factor`` (time scaled by 1/factor)."""
        if factor <= 0:
            raise ModelError("scaling factor must be positive")
        return PhaseType(
            self.initial,
            tuple((s, r * factor, t) for s, r, t in self.transitions),
            tuple((p, r * factor) for p, r in self.completions),
            name=f"scaled({factor:g}, {self.describe()})",
        )

    def subgenerator(self) -> np.ndarray:
        """The sub-generator matrix ``S`` over the transient phases."""
        matrix = np.zeros((self.num_phases, self.num_phases))
        for source, rate, target in self.transitions:
            matrix[source, target] += rate
            matrix[source, source] -= rate
        for phase, rate in self.completions:
            matrix[phase, phase] -= rate
        return matrix

    def exit_vector(self) -> np.ndarray:
        """Completion rate of every phase."""
        vector = np.zeros(self.num_phases)
        for phase, rate in self.completions:
            vector[phase] += rate
        return vector

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #
    def mean(self) -> float:
        """Expected value ``-alpha S^{-1} 1``."""
        alpha = np.asarray(self.initial)
        moments = np.linalg.solve(self.subgenerator().T, -alpha)
        return float(moments.sum())

    def variance(self) -> float:
        """Variance computed from the first two moments."""
        alpha = np.asarray(self.initial)
        inverse = np.linalg.inv(self.subgenerator())
        first = float(-alpha @ inverse @ np.ones(self.num_phases))
        second = float(2.0 * alpha @ inverse @ inverse @ np.ones(self.num_phases))
        return second - first * first

    def cdf(self, time: float) -> float:
        """Probability that the event has happened by ``time``."""
        if time <= 0:
            return 0.0
        alpha = np.asarray(self.initial)
        survivor = alpha @ linalg.expm(self.subgenerator() * time) @ np.ones(self.num_phases)
        return float(1.0 - survivor)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value (used by the Monte-Carlo simulator)."""
        phase = int(rng.choice(self.num_phases, p=np.asarray(self.initial)))
        elapsed = 0.0
        while True:
            outgoing: list[tuple[float, int | None]] = []
            for source, rate, target in self.transitions:
                if source == phase:
                    outgoing.append((rate, target))
            for completion_phase, rate in self.completions:
                if completion_phase == phase:
                    outgoing.append((rate, None))
            total = sum(rate for rate, _ in outgoing)
            elapsed += float(rng.exponential(1.0 / total))
            choice = rng.uniform(0.0, total)
            cumulative = 0.0
            for rate, target in outgoing:
                cumulative += rate
                if choice <= cumulative:
                    if target is None:
                        return elapsed
                    phase = target
                    break

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` values with batched per-phase arrays.

        The absorbing CTMC is executed in lockstep for all samples: every
        round draws one exponential array and one uniform array per distinct
        current phase (so an Erlang-``k`` costs ``k`` batched draws for the
        whole batch instead of ``2k`` scalar draws per sample).  Used by the
        vectorised simulation engine's batched draw mode; the scalar
        :meth:`sample` remains the draw-for-draw reference.
        """
        if size < 0:
            raise ModelError(f"sample_batch needs a non-negative size, got {size}")
        elapsed = np.zeros(size)
        if size == 0:
            return elapsed
        initial_cum = np.cumsum(np.asarray(self.initial))
        phase = np.searchsorted(initial_cum, rng.random(size), side="right").astype(
            np.int64
        )
        np.clip(phase, 0, self.num_phases - 1, out=phase)
        totals, cums, targets = self._phase_tables()
        alive = np.arange(size)
        while alive.size:
            for current in np.unique(phase[alive]):
                rows = alive[phase[alive] == current]
                total = totals[current]
                if total <= 0:  # pragma: no cover - dead phase, mirrors sample()
                    raise ModelError(
                        f"phase {current} of {self.describe()} has no outgoing rate"
                    )
                elapsed[rows] += rng.exponential(1.0 / total, rows.size)
                choice = rng.uniform(0.0, total, rows.size)
                index = np.minimum(
                    np.searchsorted(cums[current], choice, side="left"),
                    len(cums[current]) - 1,
                )
                phase[rows] = targets[current][index]
            alive = alive[phase[alive] >= 0]
        return elapsed

    def _phase_tables(self):
        """Per-phase outgoing tables: (total rate, cumulative rates, targets).

        Targets use ``-1`` for absorption.  Rates are accumulated in the
        declaration order of :attr:`transitions` then :attr:`completions`,
        matching the scalar :meth:`sample` loop.
        """
        cached = getattr(self, "_tables_cache", None)
        if cached is not None:
            return cached
        totals = np.zeros(self.num_phases)
        cums: list[np.ndarray] = []
        targets: list[np.ndarray] = []
        for phase in range(self.num_phases):
            rates = [r for s, r, _ in self.transitions if s == phase] + [
                r for p, r in self.completions if p == phase
            ]
            outgoing = [t for s, _, t in self.transitions if s == phase] + [
                -1 for p, _ in self.completions if p == phase
            ]
            totals[phase] = sum(rates)
            cums.append(np.cumsum(np.asarray(rates)) if rates else np.zeros(0))
            targets.append(np.asarray(outgoing, dtype=np.int64))
        tables = (totals, cums, targets)
        object.__setattr__(self, "_tables_cache", tables)
        return tables

    def describe(self) -> str:
        """Short human readable description."""
        return self.name or f"ph({self.num_phases} phases)"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def Exponential(rate: float) -> PhaseType:
    """Exponential distribution with the given ``rate`` (a 1-phase PH)."""
    if rate <= 0:
        raise ModelError(f"exponential rate must be positive, got {rate}")
    return PhaseType((1.0,), (), ((0, rate),), name=f"exp({rate:g})")


def Erlang(stages: int, rate: float) -> PhaseType:
    """Erlang distribution: ``stages`` exponential phases of the given ``rate``."""
    if stages < 1:
        raise ModelError("an Erlang distribution needs at least one stage")
    if rate <= 0:
        raise ModelError(f"Erlang rate must be positive, got {rate}")
    initial = tuple(1.0 if phase == 0 else 0.0 for phase in range(stages))
    transitions = tuple((phase, rate, phase + 1) for phase in range(stages - 1))
    completions = ((stages - 1, rate),)
    return PhaseType(initial, transitions, completions, name=f"erlang({stages}, {rate:g})")


def HyperExponential(probabilities: Sequence[float], rates: Sequence[float]) -> PhaseType:
    """Mixture of exponentials: with probability ``p_i`` the rate is ``rates[i]``."""
    if len(probabilities) != len(rates) or not probabilities:
        raise ModelError("need matching, non-empty probability and rate lists")
    if abs(sum(probabilities) - 1.0) > 1e-9:
        raise ModelError("hyper-exponential branch probabilities must sum to one")
    completions = tuple((index, rate) for index, rate in enumerate(rates))
    return PhaseType(
        tuple(float(p) for p in probabilities),
        (),
        completions,
        name=f"hyperexp({list(probabilities)}, {list(rates)})",
    )


__all__ = ["PhaseType", "Exponential", "Erlang", "HyperExponential"]
