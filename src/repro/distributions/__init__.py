"""Phase-type distributions used for times to failure and repair."""

from .phase_type import Erlang, Exponential, HyperExponential, PhaseType

__all__ = ["Erlang", "Exponential", "HyperExponential", "PhaseType"]
