"""Retry policy and recovery bookkeeping for parallel subtree dispatch.

The fault model of the worker pool is fail-stop plus slow: a dispatched
subtree either returns, raises, stalls past its deadline, or takes the whole
:class:`~concurrent.futures.ProcessPoolExecutor` down with it
(``BrokenProcessPool``).  :class:`RetryPolicy` bounds the recovery —
how long one task may run, how often it is retried, how long to back off
between rounds, and whether a pool that keeps breaking may fall back to
composing the remaining subtrees serially in the parent.

Every recovery action is recorded as a :class:`RecoveryEvent` on
``CompositionStatistics.recovery_events`` and counted in telemetry
(``resilience.*`` counters) — the contract is *never silent*: a run that
recovered from a fault says so in its statistics, its trace and its logs,
while its computed measures stay bit-identical to an undisturbed run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ResilienceError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the composer's parallel-dispatch recovery machinery.

    Parameters
    ----------
    max_attempts:
        Total tries per subtree task (first run included).  A task that
        exhausts its attempts is composed serially in the parent when
        ``serial_fallback`` allows, otherwise the original failure is
        re-raised.
    timeout_seconds:
        Per-task deadline enforced on the worker future (``None`` = no
        deadline).  A timed-out task is retried; the stalled worker keeps
        its pool slot until it finishes and its late result is discarded.
    backoff_seconds:
        Base sleep before retry attempt ``n`` (``backoff_seconds *
        backoff_factor ** (n - 1)``).  Defaults to 0: the faults this layer
        recovers from (crashed or hung workers) are not load-induced, so
        waiting is opt-in.
    backoff_factor:
        Exponential growth of the backoff.
    serial_fallback:
        Allow falling back to in-parent serial composition when a task
        exhausts its attempts or the pool breaks repeatedly.  With ``False``
        the failure propagates instead (chaos tests use this to assert the
        raw failure mode).
    """

    max_attempts: int = 3
    timeout_seconds: float | None = None
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ResilienceError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.backoff_seconds < 0:
            raise ResilienceError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ResilienceError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before running ``attempt`` (0-based; 0 = none)."""
        if attempt <= 0 or self.backoff_seconds == 0.0:
            return 0.0
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class RecoveryEvent:
    """One recorded recovery action (retry, fallback, quarantine, ...)."""

    #: ``"retry"`` | ``"timeout"`` | ``"pool_broken"`` | ``"serial_fallback"``
    #: | ``"cache_quarantine"`` | ``"point_error"``
    kind: str
    #: The unit affected (task id, cache key, sweep point, ...).
    key: str
    #: Retry attempt the event happened on (0-based; -1 where meaningless).
    attempt: int = 0
    #: Human-readable cause (exception repr, timeout value, ...).
    detail: str = ""


__all__ = ["RecoveryEvent", "RetryPolicy"]
