"""Resilient execution layer: fault injection and the recovery machinery.

The paper is about evaluating systems that survive component failures — and
this package makes the *pipeline itself* survive the same fault classes it
models:

* :mod:`repro.resilience.faults` — a deterministic, seeded fault-injection
  harness.  Injection points (worker crash, step timeout, cache-entry
  corruption, state-space blowup, sweep interruption) are consulted at fixed
  sites in the pipeline and fire according to an explicit
  :class:`~repro.resilience.faults.FaultPlan`, so every chaos test replays
  bit-for-bit.
* :mod:`repro.resilience.retry` — the :class:`~repro.resilience.retry.RetryPolicy`
  governing the composer's parallel subtree dispatch: per-task timeout,
  bounded retry with backoff, pool recreation after a fail-stop worker, and
  graceful serial fallback — every recovery recorded in statistics and
  telemetry, never silent.
* :mod:`repro.resilience.diskcache` — a checksummed, pickle-free on-disk
  persistence format for :class:`~repro.composer.QuotientCache` (atomic
  write, verify-on-load, quarantine-don't-crash on corrupt entries): the
  seed of the cross-run shared cache of ROADMAP item 1.
* :mod:`repro.resilience.checkpoint` — crash-safe checkpoint/resume for
  :func:`repro.sweep.run_sweep`: atomic-rename partial stores plus the
  persisted shared cache, so an interrupted sweep resumes exactly where it
  stopped and reproduces an uninterrupted run bit for bit.

See ``docs/robustness.md`` for the fault model and the recovery guarantees.
"""

from .faults import (
    INJECTION_SITES,
    FaultPlan,
    FaultSpec,
    active_fault,
    active_fault_plan,
    inject_faults,
)
from .retry import RecoveryEvent, RetryPolicy
from .diskcache import CACHE_STORE_VERSION, CacheLoadReport, load_cache, save_cache
from .checkpoint import SweepCheckpoint

__all__ = [
    "CACHE_STORE_VERSION",
    "CacheLoadReport",
    "FaultPlan",
    "FaultSpec",
    "INJECTION_SITES",
    "RecoveryEvent",
    "RetryPolicy",
    "SweepCheckpoint",
    "active_fault",
    "active_fault_plan",
    "inject_faults",
    "load_cache",
    "save_cache",
]
