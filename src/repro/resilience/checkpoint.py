"""Crash-safe checkpoint/resume for :func:`repro.sweep.run_sweep`.

A checkpoint at base path ``<base>`` is two sibling files:

``<base>.ckpt.npz``
    The rows completed so far, as the same structured table the final store
    uses, plus a uint8-encoded canonical-JSON ``meta`` member: format tag,
    version, the sweep's *configuration fingerprint* and the axis list.
``<base>.ckpt.cache.npz``
    The shared :class:`~repro.composer.QuotientCache` at the moment of the
    checkpoint, in the checksummed :mod:`repro.resilience.diskcache` format
    (absent when the sweep runs cache-less).

Both are written atomically (temp file + fsync + ``os.replace``), so a kill
at any instant leaves a loadable pair.

Why the cache is part of the checkpoint
---------------------------------------
The bit-identity contract of resume is *total*: a resumed sweep's store must
match an uninterrupted run byte for byte (modulo the wall-clock ``seconds``
columns, see :func:`repro.sweep.store.canonical_store_bytes`).  The measures
replay trivially — every point is a pure function of its recorded seed — but
the per-point ``cache_hits``/``cache_misses`` *deltas* depend on the cache
state the point ran against.  Persisting the shared cache (entries and
counters) and restoring it before the first live evaluation makes the
resumed run's cache trajectory identical to the uninterrupted one's, so even
those columns match.

Resume replays the recorded rows positionally: evaluation ``index`` is the
replay key, which also covers an interruption inside the derived phases
(finite-difference, base and conditioned-importance evaluations) — those are
just further evaluations in the same deterministic order.  A fingerprint
mismatch (the sweep was reconfigured since the checkpoint) refuses loudly
with :class:`~repro.errors.SweepError` rather than resuming into a
different parameter space.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import SweepError
from ..telemetry import incr, span
from .diskcache import CacheLoadReport, atomic_savez, load_cache, save_cache

#: Version of the checkpoint layout; the loader refuses other versions.
CHECKPOINT_VERSION = 1

_FORMAT = "repro-sweep-checkpoint"


class SweepCheckpoint:
    """One sweep's checkpoint pair (rows + shared cache) at a base path."""

    def __init__(self, base: "str | Path", *, fingerprint: str, axes) -> None:
        base = Path(base)
        if base.suffix == ".npz":
            base = base.with_suffix("")
        self.base = base
        self.fingerprint = fingerprint
        self.axes = list(axes)
        self.rows_path = base.parent / (base.name + ".ckpt.npz")
        self.cache_path = base.parent / (base.name + ".ckpt.cache.npz")

    def exists(self) -> bool:
        return self.rows_path.exists()

    def write(self, rows, cache) -> None:
        """Persist the completed rows and (when present) the shared cache.

        The cache archive is written first: if the kill lands between the
        two renames, the rows file still describes a prefix of the cache's
        history — replayed rows never *need* cache state, so a slightly
        newer cache is harmless, while a slightly older one would shift the
        first live point's hit/miss deltas.
        """
        from ..sweep.driver import rows_to_table

        with span("resilience.checkpoint.write", rows=len(rows)):
            if cache is not None:
                save_cache(cache, self.cache_path)
            meta = {
                "format": _FORMAT,
                "version": CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
                "axes": self.axes,
                "rows": len(rows),
            }
            atomic_savez(
                self.rows_path,
                {
                    "meta": np.frombuffer(
                        json.dumps(meta, sort_keys=True, separators=(",", ":")).encode(),
                        dtype=np.uint8,
                    ),
                    "rows": rows_to_table(rows, self.axes),
                },
            )
            incr("resilience.checkpoint.writes")

    def load(self, cache) -> tuple[list, "CacheLoadReport | None"]:
        """Load the recorded rows; restore the cache archive into ``cache``.

        Returns ``(rows, cache_report)`` — ``cache_report`` is ``None`` when
        the sweep runs cache-less or no cache archive exists.  Raises
        :class:`~repro.errors.SweepError` on any structural mismatch
        (unreadable file, wrong version, fingerprint or axis divergence):
        a checkpoint that does not describe *this* sweep must never be
        silently replayed into it.
        """
        from ..sweep.driver import rows_from_table

        with span("resilience.checkpoint.load", path=str(self.rows_path)):
            try:
                archive = np.load(self.rows_path, allow_pickle=False)
            except (OSError, ValueError) as error:
                raise SweepError(
                    f"cannot read sweep checkpoint {self.rows_path}: {error}"
                ) from error
            with archive:
                try:
                    meta = json.loads(bytes(archive["meta"]).decode())
                    table = archive["rows"]
                except (KeyError, ValueError, UnicodeDecodeError) as error:
                    raise SweepError(
                        f"sweep checkpoint {self.rows_path} is malformed: {error}"
                    ) from error
                if meta.get("format") != _FORMAT:
                    raise SweepError(
                        f"{self.rows_path} is not a sweep checkpoint "
                        f"(format {meta.get('format')!r})"
                    )
                if meta.get("version") != CHECKPOINT_VERSION:
                    raise SweepError(
                        f"sweep checkpoint {self.rows_path} has unsupported "
                        f"version {meta.get('version')!r} (this build reads "
                        f"version {CHECKPOINT_VERSION})"
                    )
                if meta.get("fingerprint") != self.fingerprint:
                    raise SweepError(
                        f"sweep checkpoint {self.rows_path} was written by a "
                        "different sweep configuration; refusing to resume "
                        "(delete the checkpoint or restore the configuration)"
                    )
                if meta.get("axes") != self.axes:
                    raise SweepError(
                        f"sweep checkpoint {self.rows_path} has axes "
                        f"{meta.get('axes')!r}, expected {self.axes!r}"
                    )
                rows = rows_from_table(table, self.axes)
            report = None
            if cache is not None and self.cache_path.exists():
                _, report = load_cache(self.cache_path, cache)
            incr("resilience.checkpoint.resumed_rows", len(rows))
            return rows, report

    def clear(self) -> None:
        """Remove the checkpoint pair (missing files are fine)."""
        for path in (self.rows_path, self.cache_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass


__all__ = ["CHECKPOINT_VERSION", "SweepCheckpoint"]
