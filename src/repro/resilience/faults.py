"""Deterministic fault injection for the evaluation pipeline.

The pipeline has a small number of *injection sites* — fixed places in the
code that ask the ambient :class:`FaultPlan` (if any) whether a fault should
fire here, now.  With no plan active every consultation is a contextvar read
plus a ``None`` check, so production runs pay nothing.

Faults are identified by ``(site, key, attempt)``:

``site``
    One of :data:`INJECTION_SITES` — the fault class.
``key``
    The concrete unit the site is handling: a subtree task id
    (``"subtree:3"``), a cache entry key, a composition step description, a
    sweep point index (``"point:17"``).
``attempt``
    The retry attempt currently executing (0 = first try).  Matching on the
    attempt is what makes "crash the worker on its first attempt only"
    expressible — and replayable.

Two firing modes compose:

* **Declarative** — explicit :class:`FaultSpec` entries matched exactly.
  Fully deterministic by construction; the chaos acceptance tests use this.
* **Seeded random** — ``FaultPlan(seed=..., rate=p, sites=(...))`` fires
  each consultation with probability ``p`` decided by a SHA-256 hash of
  ``(seed, site, key, attempt)``.  Deterministic across runs, processes and
  schedulers for the same seed; the chaos differential suite uses this to
  sample the fault space without losing replayability.

Process boundaries: contextvars do not cross
:class:`~concurrent.futures.ProcessPoolExecutor`, so the composer ships the
active plan inside the worker payload and the worker re-activates it with
:func:`inject_faults` — the worker-side sites then consult the very same
plan (see :func:`repro.composer.composer._compose_subtree_worker`).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from ..errors import ResilienceError

#: The pipeline's injection sites and the behaviour a firing triggers.
INJECTION_SITES = (
    # Fail-stop: the worker process handling a dispatched subtree calls
    # os._exit, so the parent observes a BrokenProcessPool.
    "worker.crash",
    # The worker sleeps for the spec's sleep_seconds before computing, so a
    # per-task timeout in the parent expires.
    "worker.timeout",
    # The on-disk cache writer flips one byte of the entry's payload after
    # checksumming it, so verify-on-load quarantines exactly this entry.
    "cache.corrupt_entry",
    # The composer treats this step's product as exceeding any state budget
    # (inflates the observed size by the spec's factor).
    "compose.blowup",
    # The sweep driver raises KeyboardInterrupt before evaluating this
    # point — the reproducible stand-in for a user or scheduler kill.
    "sweep.interrupt",
)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where it fires and what it carries.

    ``key=None`` matches every key at the site; ``attempts`` lists the retry
    attempts on which the fault fires (so a transient fault is simply a spec
    with ``attempts=(0,)`` — the retry succeeds).
    """

    site: str
    key: str | None = None
    attempts: tuple[int, ...] = (0,)
    #: ``worker.timeout``: how long the worker stalls before computing.
    sleep_seconds: float = 1.0
    #: ``compose.blowup``: factor the observed product size is inflated by.
    factor: float = float("inf")

    def __post_init__(self) -> None:
        if self.site not in INJECTION_SITES:
            raise ResilienceError(
                f"unknown injection site {self.site!r} "
                f"(expected one of {INJECTION_SITES})"
            )

    def matches(self, key: str | None, attempt: int) -> bool:
        if self.key is not None and self.key != key:
            return False
        return attempt in self.attempts


@dataclass
class FaultPlan:
    """A replayable set of faults: declarative specs plus a seeded rate.

    The plan is picklable (it travels inside worker payloads) and records
    every fault it fired in :attr:`fired` — parent-side assertions read it;
    worker-side firings are observed through their effects instead (a
    crashed process, a timed-out future).
    """

    specs: tuple[FaultSpec, ...] = ()
    #: Seed of the probabilistic mode (None disables it).
    seed: int | None = None
    #: Per-consultation firing probability of the probabilistic mode.
    rate: float = 0.0
    #: Sites the probabilistic mode may fire at (None = all sites).
    sites: tuple[str, ...] | None = None
    #: ``(site, key, attempt)`` of every fault this plan instance fired.
    fired: list = field(default_factory=list, compare=False)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        if not 0.0 <= self.rate <= 1.0:
            raise ResilienceError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.rate > 0.0 and self.seed is None:
            raise ResilienceError("a probabilistic fault plan needs a seed")
        if self.sites is not None:
            unknown = set(self.sites) - set(INJECTION_SITES)
            if unknown:
                raise ResilienceError(
                    f"unknown injection site(s) {sorted(unknown)} "
                    f"(expected among {INJECTION_SITES})"
                )

    def spec_for(self, site: str, key: str | None, attempt: int) -> FaultSpec | None:
        """The fault to fire at this consultation, or None.

        Declarative specs win over the probabilistic mode (so a test can pin
        one exact fault on top of background noise); the first matching spec
        applies.
        """
        for spec in self.specs:
            if spec.site == site and spec.matches(key, attempt):
                self.fired.append((site, key, attempt))
                return spec
        if (
            self.rate > 0.0
            and (self.sites is None or site in self.sites)
            and _seeded_draw(self.seed, site, key, attempt) < self.rate
        ):
            spec = FaultSpec(site=site, key=key, attempts=(attempt,))
            self.fired.append((site, key, attempt))
            return spec
        return None


def _seeded_draw(seed: int | None, site: str, key: str | None, attempt: int) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments.

    SHA-256 rather than ``hash()``: Python's string hashing is salted per
    process, and a fault that fires in the parent but not in a replay (or in
    a worker) is worthless for differential testing.
    """
    message = f"{seed}|{site}|{key}|{attempt}".encode()
    digest = hashlib.sha256(message).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


#: The ambient fault plan of this context (None = no injection, zero cost).
_ACTIVE_PLAN: ContextVar[FaultPlan | None] = ContextVar(
    "repro_fault_plan", default=None
)


@contextmanager
def inject_faults(plan: FaultPlan | None):
    """Activate a fault plan for the dynamic extent of the block.

    ``None`` is accepted and is a no-op, so call sites can pass an optional
    plan through unconditionally.
    """
    if plan is None:
        yield None
        return
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)


def active_fault_plan() -> FaultPlan | None:
    """The ambient fault plan, or None when no injection is active."""
    return _ACTIVE_PLAN.get()


def active_fault(site: str, key: str | None = None, attempt: int = 0) -> FaultSpec | None:
    """Consult the ambient plan at an injection site (free no-op without one)."""
    plan = _ACTIVE_PLAN.get()
    if plan is None:
        return None
    return plan.spec_for(site, key, attempt)


__all__ = [
    "FaultPlan",
    "FaultSpec",
    "INJECTION_SITES",
    "active_fault",
    "active_fault_plan",
    "inject_faults",
]
