"""Checksummed on-disk persistence for :class:`~repro.composer.QuotientCache`.

File format (``CACHE_STORE_VERSION`` 1)
---------------------------------------
One ``np.savez_compressed`` archive.  The member ``index`` is a uint8 array
holding a canonical-JSON document::

    {"format": "repro-quotient-cache", "version": 1,
     "counters": {"hits": ..., "misses": ..., "stores": ..., "saved_seconds": ...},
     "entries": [{"key": ..., "slot": "e00000", "checksum": "<sha256 hex>",
                  "name": ..., "inputs": [...], "outputs": [...],
                  "internals": [...], "num_states": ..., "initial": ...,
                  "labels": {"3": ["up"]}, "state_names": null,
                  "slots": [...], "states_before": ..., ...}, ...]}

and each entry owns eight array members under its ``slot`` prefix — the CSR
tables of its automaton, exactly the arrays :meth:`IOIMC.__getstate__`
pickles (``<slot>.ii/is/ia/it`` interactive indptr/source/action/target,
``<slot>.mi/ms/mr/mt`` Markovian indptr/source/rate/target).  Action ids
index ``sorted(signature.all_actions)`` — an invariant every
:class:`~repro.ioimc.indexed.TransitionIndex` constructor maintains — so the
signature name lists in the index fully decode the action column.  No pickle
anywhere: the archive is loaded with ``allow_pickle=False`` and a hostile
file can at worst fail to verify.

Integrity
---------
Every entry carries a SHA-256 over its structural metadata plus the raw
bytes (with dtype and shape) of its eight arrays, in fixed order.  On load
the checksum is verified *before* any reconstruction; an entry that fails —
corrupt bytes, missing member, undecodable metadata — is **quarantined**:
counted, reported by key in the :class:`CacheLoadReport`, surfaced through
the ``resilience.cache.quarantined`` telemetry counter, and skipped.  Only
whole-file problems (unreadable archive, missing/unparsable index,
unsupported version) raise :class:`~repro.errors.CacheStoreError` — a cache
file is an accelerator, and a scratched accelerator must never kill the
analysis that would simply have run slower without it.

Writes are atomic: the archive is written to a temporary file in the target
directory, fsynced, then ``os.replace``d over the destination — a crash
mid-write leaves either the old file or none, never a torn one.  The
``cache.corrupt_entry`` injection site flips one byte of an entry's payload
*after* checksumming, which is how the chaos tier manufactures exactly-one
quarantined entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..composer.cache import CacheEntry, QuotientCache
from ..errors import CacheStoreError
from ..ioimc import IOIMC
from ..ioimc.actions import Signature
from ..telemetry import incr, span
from .faults import active_fault

#: Version of the on-disk archive layout.  Bump on any incompatible change;
#: the loader refuses other versions loudly instead of misreading them.
CACHE_STORE_VERSION = 1

_FORMAT = "repro-quotient-cache"

#: Array members of one entry, in checksum order: interactive CSR
#: (indptr, source, action, target) then Markovian CSR
#: (indptr, source, rate, target).
_ARRAY_FIELDS = ("ii", "is", "ia", "it", "mi", "ms", "mr", "mt")


@dataclass(frozen=True)
class CacheLoadReport:
    """Outcome of one :func:`load_cache` call."""

    path: str
    #: Entries restored into the cache.
    loaded: int
    #: Entries skipped because they failed verification or reconstruction.
    quarantined: int
    #: Step keys of the quarantined entries (for logs and assertions).
    quarantined_keys: tuple[str, ...]


def _canonical_json(document) -> bytes:
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode()


def _entry_metadata(key: str, entry: CacheEntry) -> dict:
    """Structural metadata of one entry (everything but the arrays)."""
    automaton = entry.automaton
    signature = automaton.signature
    return {
        "key": key,
        "name": automaton.name,
        "inputs": sorted(signature.inputs),
        "outputs": sorted(signature.outputs),
        "internals": sorted(signature.internals),
        "num_states": automaton.num_states,
        "initial": automaton.initial,
        "labels": {
            str(state): sorted(props) for state, props in automaton.labels.items()
        },
        "state_names": list(automaton.state_names)
        if automaton.state_names is not None
        else None,
        "slots": list(entry.slots),
        "states_before": entry.states_before,
        "transitions_before": entry.transitions_before,
        "states_after": entry.states_after,
        "transitions_after": entry.transitions_after,
        "compose_seconds": entry.compose_seconds,
        "reduce_seconds": entry.reduce_seconds,
    }


def _entry_arrays(entry: CacheEntry) -> dict[str, np.ndarray]:
    index = entry.automaton.index()
    icsr = index.interactive_csr
    mcsr = index.markovian_csr()
    return {
        "ii": icsr.indptr,
        "is": icsr.source,
        "ia": icsr.action,
        "it": icsr.target,
        "mi": mcsr.indptr,
        "ms": mcsr.source,
        "mr": mcsr.rate,
        "mt": mcsr.target,
    }


def _checksum(metadata: dict, arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over the metadata and the raw array payloads, in fixed order."""
    digest = hashlib.sha256()
    digest.update(_canonical_json(metadata))
    for field in _ARRAY_FIELDS:
        array = np.ascontiguousarray(arrays[field])
        digest.update(field.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_cache(cache: QuotientCache, path: str | Path) -> int:
    """Persist a cache's step entries atomically; returns the entry count.

    Entries whose automata cannot be indexed are skipped defensively (none
    the composer stores can fail this).  The ``cache.corrupt_entry`` fault
    site — consulted per entry key — flips one byte of the entry's first CSR
    array *after* its checksum was computed, so verify-on-load later
    quarantines exactly that entry.
    """
    path = Path(path)
    members: dict[str, np.ndarray] = {}
    index_entries = []
    with span("resilience.cache.save", path=str(path)):
        for position, (key, entry) in enumerate(sorted(cache.entries().items())):
            slot = f"e{position:05d}"
            metadata = _entry_metadata(key, entry)
            arrays = _entry_arrays(entry)
            checksum = _checksum(metadata, arrays)
            fault = active_fault("cache.corrupt_entry", key=key)
            if fault is not None:
                corrupted = np.array(arrays["ii"], copy=True)
                view = corrupted.view(np.uint8)
                view[-1] ^= 0xFF
                arrays = {**arrays, "ii": corrupted}
                incr("resilience.fault.cache_corrupt")
            for field, array in arrays.items():
                members[f"{slot}.{field}"] = array
            index_entries.append({**metadata, "slot": slot, "checksum": checksum})
        document = {
            "format": _FORMAT,
            "version": CACHE_STORE_VERSION,
            "counters": {
                "hits": cache.hits,
                "misses": cache.misses,
                "stores": cache.stores,
                "saved_seconds": cache.saved_seconds,
            },
            "entries": index_entries,
        }
        members["index"] = np.frombuffer(_canonical_json(document), dtype=np.uint8)
        atomic_savez(path, members)
    return len(index_entries)


def atomic_savez(path: Path, members: dict[str, np.ndarray]) -> None:
    """Write a compressed ``.npz`` atomically (temp file + fsync + rename).

    Shared by the cache store and the sweep checkpoint: a crash at any
    instant leaves either the previous file or no file — never a torn
    archive that a later load would have to guess about.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            np.savez_compressed(handle, **members)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _decode_entry(metadata: dict, archive) -> tuple[str, CacheEntry]:
    """Verify one entry's checksum and rebuild its :class:`CacheEntry`.

    Raises on any problem — missing member, checksum mismatch, malformed
    metadata; the caller quarantines.  Verification happens strictly before
    reconstruction, so corrupt bytes can never reach the automaton builders.
    """
    slot = metadata["slot"]
    arrays = {field: archive[f"{slot}.{field}"] for field in _ARRAY_FIELDS}
    structural = {
        field: value
        for field, value in metadata.items()
        if field not in ("slot", "checksum")
    }
    if _checksum(structural, arrays) != metadata["checksum"]:
        raise CacheStoreError(f"checksum mismatch for entry {metadata['key']!r}")
    signature = Signature.create(
        inputs=metadata["inputs"],
        outputs=metadata["outputs"],
        internals=metadata["internals"],
    )
    automaton = IOIMC.__new__(IOIMC)
    automaton.__setstate__(
        {
            "name": metadata["name"],
            "signature": signature,
            "num_states": metadata["num_states"],
            "initial": metadata["initial"],
            "labels": {
                int(state): frozenset(props)
                for state, props in metadata["labels"].items()
            },
            "state_names": list(metadata["state_names"])
            if metadata["state_names"] is not None
            else None,
            "interactive_csr": (arrays["ii"], arrays["is"], arrays["ia"], arrays["it"]),
            "markovian_csr": (arrays["mi"], arrays["ms"], arrays["mr"], arrays["mt"]),
        }
    )
    slots = tuple(metadata["slots"])
    if set(slots) != set(signature.visible):
        raise CacheStoreError(
            f"slot/alphabet mismatch for entry {metadata['key']!r}"
        )
    entry = CacheEntry(
        automaton=automaton,
        slots=slots,
        states_before=metadata["states_before"],
        transitions_before=metadata["transitions_before"],
        states_after=metadata["states_after"],
        transitions_after=metadata["transitions_after"],
        compose_seconds=metadata["compose_seconds"],
        reduce_seconds=metadata["reduce_seconds"],
    )
    return metadata["key"], entry


def load_cache(
    path: str | Path, cache: QuotientCache | None = None
) -> tuple[QuotientCache, CacheLoadReport]:
    """Load a persisted cache, quarantining (not raising on) corrupt entries.

    Entries are restored into ``cache`` (a fresh :class:`QuotientCache` when
    ``None``) and the saved counters are *added* to its counters — the same
    convention as :meth:`QuotientCache.merge_from`, and an exact restore when
    the target is fresh.  Raises :class:`~repro.errors.CacheStoreError` only
    for whole-file failures.
    """
    path = Path(path)
    with span("resilience.cache.load", path=str(path)):
        try:
            archive = np.load(path, allow_pickle=False)
        except OSError as error:
            raise CacheStoreError(f"cannot read cache file {path}: {error}") from error
        except ValueError as error:
            raise CacheStoreError(
                f"cache file {path} is not a readable archive: {error}"
            ) from error
        with archive:
            try:
                document = json.loads(bytes(archive["index"]).decode())
            except KeyError as error:
                raise CacheStoreError(
                    f"cache file {path} has no index member"
                ) from error
            except (ValueError, UnicodeDecodeError) as error:
                raise CacheStoreError(
                    f"cache file {path} has an unparsable index: {error}"
                ) from error
            if document.get("format") != _FORMAT:
                raise CacheStoreError(
                    f"cache file {path} has unknown format "
                    f"{document.get('format')!r} (expected {_FORMAT!r})"
                )
            if document.get("version") != CACHE_STORE_VERSION:
                raise CacheStoreError(
                    f"cache file {path} has unsupported version "
                    f"{document.get('version')!r} "
                    f"(this build reads version {CACHE_STORE_VERSION})"
                )
            target = cache if cache is not None else QuotientCache()
            loaded = 0
            quarantined_keys = []
            for metadata in document.get("entries", []):
                key = metadata.get("key", "<unknown>")
                try:
                    key, entry = _decode_entry(metadata, archive)
                except Exception:
                    quarantined_keys.append(str(key))
                    incr("resilience.cache.quarantined")
                    continue
                target.restore(key, entry)
                loaded += 1
            counters = document.get("counters", {})
            target.hits += int(counters.get("hits", 0))
            target.misses += int(counters.get("misses", 0))
            target.stores += int(counters.get("stores", 0))
            target.saved_seconds += float(counters.get("saved_seconds", 0.0))
    return target, CacheLoadReport(
        path=str(path),
        loaded=loaded,
        quarantined=len(quarantined_keys),
        quarantined_keys=tuple(quarantined_keys),
    )


__all__ = [
    "CACHE_STORE_VERSION",
    "CacheLoadReport",
    "load_cache",
    "save_cache",
]
