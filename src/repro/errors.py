"""Exception hierarchy for the Arcade reproduction library.

All library-specific errors derive from :class:`ArcadeError` so that callers
can catch any library failure with a single ``except`` clause while still
being able to distinguish the individual failure classes.
"""

from __future__ import annotations


class ArcadeError(Exception):
    """Base class of every exception raised by this library."""


class ModelError(ArcadeError):
    """An Arcade model (or one of its building blocks) is ill-formed."""


class SignatureError(ArcadeError):
    """Two I/O-IMCs have incompatible action signatures.

    Raised, for instance, when two I/O-IMCs that are being composed both
    declare the same action as an output (outputs must be under the control
    of exactly one component).
    """


class InputEnablednessError(ArcadeError):
    """An I/O-IMC is not input-enabled in some state."""


class NondeterminismError(ArcadeError):
    """Internal nondeterminism could not be resolved confluently.

    The conversion of a closed I/O-IMC into a CTMC requires that all internal
    (tau) transitions are confluent, i.e. every maximal tau-path from a state
    leads to the same tangible state.  Arcade models are confluent by
    construction; this error signals a modelling mistake (or an unsupported
    construct) rather than a numerical problem.
    """


class LumpingError(ArcadeError):
    """Bisimulation minimisation could not attribute behaviour unambiguously.

    Raised by the weak-bisimulation engine when the tau-successors of a
    Markovian target land in several equivalence classes through genuinely
    nondeterministic internal branching, so the Markovian rate cannot be
    attributed to a single class.  Models produced by the Arcade translation
    are tau-confluent and never trigger this; hand-written I/O-IMCs can.
    """


class CompositionError(ArcadeError):
    """Parallel composition failed (incompatible models or bad ordering)."""


class PlannerError(ArcadeError):
    """Composition-order planning failed (bad inputs or persisted parameters).

    Raised, for instance, when a persisted cost-parameter JSON file is
    missing or corrupt — the message names the offending path so a failure
    mid-sweep points straight at the artifact instead of a raw traceback.
    """


class SweepError(ArcadeError):
    """A parameter sweep is ill-specified (bad axes, priors or conditioning)."""


class ResilienceError(ArcadeError):
    """The resilience layer itself was misused (bad fault plan, bad policy)."""


class StateBudgetError(CompositionError):
    """An intermediate state space exceeded the configured budget.

    Raised by :class:`repro.composer.Composer` when ``state_budget`` is set
    and a composition step's pre-reduction product exceeds it.  Deliberately
    a :class:`CompositionError` subclass: callers that already guard
    composition failures contain budget blowups for free, and the sweep
    driver's per-point isolation turns it into an error row instead of a
    dead sweep.
    """


class CacheStoreError(ArcadeError):
    """An on-disk quotient-cache file could not be used at all.

    Raised only for whole-file problems (unreadable archive, missing or
    unparsable index, unsupported format version).  *Per-entry* corruption
    never raises: checksum-failing entries are quarantined and reported, and
    the load continues with the surviving entries (see
    :mod:`repro.resilience.diskcache`).
    """


class AnalysisError(ArcadeError):
    """A numerical analysis step (steady state, transient, ...) failed."""


class TelemetryError(ArcadeError):
    """A telemetry stream could not be read (missing file, bad schema).

    Raised by the report loader of :mod:`repro.telemetry.report` — telemetry
    *writing* never raises into the pipeline; observability must not be able
    to fail an analysis.
    """


class SyntaxParseError(ArcadeError):
    """The textual Arcade syntax could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
