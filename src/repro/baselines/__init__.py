"""Baselines and comparison points used in the evaluation (Table 1, ablations)."""

from . import gspn
from .dft import StaticFaultTreeAnalyzer
from .flat import FlatCompositionResult, flat_compose
from .gspn import DDSNetOptions, GSPN, build_dds_gspn, build_dds_san_ctmc

__all__ = [
    "DDSNetOptions",
    "FlatCompositionResult",
    "GSPN",
    "StaticFaultTreeAnalyzer",
    "build_dds_gspn",
    "build_dds_san_ctmc",
    "flat_compose",
    "gspn",
]
