"""Galileo-style static fault-tree reliability analysis (no repair).

Table 1 of the paper cross-checks the DDS reliability with the Galileo
dynamic-fault-tree tool [1]; as the paper notes (footnote 11), a DFT suffices
there because no repair is considered, and without repair the DDS is in fact
a *static* fault tree.  Galileo is not openly available, so this module
provides the equivalent computation: the exact probability that the
``SYSTEM DOWN`` expression holds at the mission time, assuming

* no component is ever repaired,
* components fail independently (no destructive functional dependencies and
  no load sharing — the module refuses models that violate this), and
* a component with several failure modes picks mode ``i`` with its declared
  probability when it fails.

For tree-structured expressions (each component referenced by one branch
only) the evaluation is purely structural; components shared between
branches are handled exactly by conditioning on their joint state as long as
there are not too many of them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..arcade.expressions import And, Expression, KOutOfN, Literal, Or
from ..arcade.model import ArcadeModel
from ..arcade.operational_modes import OMGroupKind
from ..errors import AnalysisError, ModelError

#: Maximum number of shared components handled by exact conditioning.
MAX_SHARED_COMPONENTS = 16


@dataclass(frozen=True)
class ComponentFailureProbabilities:
    """Probability of each failure mode of one component at the mission time."""

    component: str
    by_mode: dict[str, float]

    @property
    def any_mode(self) -> float:
        return sum(self.by_mode.values())


class StaticFaultTreeAnalyzer:
    """Exact no-repair reliability of an Arcade model (the "Galileo" column)."""

    def __init__(self, model: ArcadeModel) -> None:
        if model.system_down is None:
            raise ModelError(f"{model.name}: no SYSTEM DOWN expression")
        self.model = model
        self._check_static()

    def _check_static(self) -> None:
        for name, component in self.model.components.items():
            if component.destructive_fdep is not None:
                raise AnalysisError(
                    f"{name}: destructive functional dependencies make the fault tree "
                    "dynamic; the static analyser does not apply"
                )
            for group in component.operational_modes:
                if group.kind is not OMGroupKind.ACTIVE_INACTIVE and group.triggers:
                    raise AnalysisError(
                        f"{name}: expression-driven operational modes introduce "
                        "dependencies between components; the static analyser does not apply"
                    )

    # ------------------------------------------------------------------ #
    # component-level probabilities
    # ------------------------------------------------------------------ #
    def failure_probabilities(
        self, component_name: str, mission_time: float
    ) -> ComponentFailureProbabilities:
        """Mode-wise failure probability of one component by ``mission_time``.

        Spares with an active/inactive group are treated as *hot* spares
        (they fail at their inactive-state rate while dormant), matching the
        Arcade model of the DDS spare processor.
        """
        component = self.model.component(component_name)
        distribution = component.time_to_failure_of(0)
        if distribution is None:
            total = 0.0
        else:
            total = distribution.cdf(mission_time)
        by_mode = {
            f"m{index + 1}": probability * total
            for index, probability in enumerate(component.failure_mode_probabilities)
        }
        return ComponentFailureProbabilities(component_name, by_mode)

    # ------------------------------------------------------------------ #
    # system-level probabilities
    # ------------------------------------------------------------------ #
    def unreliability(self, mission_time: float) -> float:
        """Probability that the SYSTEM DOWN expression holds at ``mission_time``."""
        assert self.model.system_down is not None
        expression = self.model.system_down
        return self._probability(expression, mission_time)

    def reliability(self, mission_time: float) -> float:
        """Probability of no system failure by ``mission_time``."""
        return 1.0 - self.unreliability(mission_time)

    def _probability(self, expression: Expression, mission_time: float) -> float:
        shared = _shared_components(expression)
        if not shared:
            return self._structural(expression, mission_time, fixed={})
        if len(shared) > MAX_SHARED_COMPONENTS:
            raise AnalysisError(
                f"{len(shared)} components are shared between branches; exact "
                "conditioning is limited to "
                f"{MAX_SHARED_COMPONENTS}"
            )
        # Condition on the failure state of every shared component.
        total = 0.0
        probabilities = {
            name: self.failure_probabilities(name, mission_time) for name in sorted(shared)
        }
        outcomes_per_component = [
            [(None, 1.0 - probabilities[name].any_mode)]
            + [(mode, value) for mode, value in probabilities[name].by_mode.items()]
            for name in sorted(shared)
        ]
        for combination in itertools.product(*outcomes_per_component):
            weight = 1.0
            fixed: dict[str, str | None] = {}
            for name, (mode, probability) in zip(sorted(shared), combination):
                weight *= probability
                fixed[name] = mode
            if weight == 0.0:
                continue
            total += weight * self._structural(expression, mission_time, fixed=fixed)
        return total

    def _structural(
        self, expression: Expression, mission_time: float, *, fixed: dict[str, str | None]
    ) -> float:
        if isinstance(expression, Literal):
            if expression.component in fixed:
                mode = fixed[expression.component]
                if mode is None:
                    return 0.0
                if expression.mode is None or expression.mode == mode:
                    return 1.0
                return 0.0
            probabilities = self.failure_probabilities(expression.component, mission_time)
            if expression.mode is None:
                return probabilities.any_mode
            return probabilities.by_mode.get(expression.mode, 0.0)
        if isinstance(expression, And):
            result = 1.0
            for child in expression.children:
                result *= self._structural(child, mission_time, fixed=fixed)
            return result
        if isinstance(expression, Or):
            survive = 1.0
            for child in expression.children:
                survive *= 1.0 - self._structural(child, mission_time, fixed=fixed)
            return 1.0 - survive
        if isinstance(expression, KOutOfN):
            values = [
                self._structural(child, mission_time, fixed=fixed)
                for child in expression.children
            ]
            return _at_least_k(expression.k, values)
        raise AnalysisError(f"unknown expression node {expression!r}")


def _shared_components(expression: Expression) -> set[str]:
    """Components that occur in more than one branch of the expression tree."""
    shared: set[str] = set()

    def walk(node: Expression) -> set[str]:
        if isinstance(node, Literal):
            return {node.component}
        seen: set[str] = set()
        for child in getattr(node, "children", ()):  # And / Or / KOutOfN
            child_components = walk(child)
            shared.update(seen & child_components)
            seen |= child_components
        return seen

    walk(expression)
    return shared


def _at_least_k(k: int, probabilities: list[float]) -> float:
    """Probability that at least ``k`` independent events occur."""
    counts = [1.0] + [0.0] * len(probabilities)
    for probability in probabilities:
        for already in range(len(probabilities), 0, -1):
            counts[already] = (
                counts[already] * (1 - probability) + counts[already - 1] * probability
            )
        counts[0] *= 1 - probability
    return sum(counts[k:])


__all__ = [
    "ComponentFailureProbabilities",
    "MAX_SHARED_COMPONENTS",
    "StaticFaultTreeAnalyzer",
]
