"""Flat (non-compositional) state-space generation.

The point of the compositional aggregation pipeline of Section 4 is that the
*naive* alternative — composing every building block and only then (if at
all) minimising — explodes.  This module provides that naive alternative so
the benchmarks can quantify the difference: the block I/O-IMCs are composed
in a fixed order with **no intermediate reduction and no early hiding**, and
the construction aborts with a :class:`FlatCompositionBudgetExceeded` result
once a state budget is exceeded (which is the expected outcome for anything
but small models).

The whole run stays on the CSR backend: the batched product keeps its flat
arrays (int32 pair codes while both operands fit), ``hide_all_outputs`` only
remaps the interned action column, and the closing
:func:`~repro.ctmc.extract_ctmc` hands the final edge columns straight to
:meth:`repro.ctmc.CTMC.from_arrays` — no stage materialises Python
transition rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arcade.semantics import TranslatedModel
from ..ctmc import CTMC, extract_ctmc, lump
from ..ioimc import IOIMC, compose, hide_all_outputs
from ..lumping import maximal_progress_cut


@dataclass(frozen=True)
class FlatCompositionResult:
    """Outcome of a flat composition run."""

    completed: bool
    states: int
    transitions: int
    blocks_composed: int
    total_blocks: int
    ioimc: IOIMC | None = None
    ctmc: CTMC | None = None

    @property
    def exceeded_budget(self) -> bool:
        return not self.completed


def flat_compose(
    translated: TranslatedModel,
    *,
    max_states: int = 250_000,
    build_ctmc: bool = True,
) -> FlatCompositionResult:
    """Compose every block without intermediate reduction.

    Stops (returning a partial result) as soon as the intermediate product
    exceeds ``max_states`` — reporting how far it got, which is exactly the
    number the "flat vs. compositional" benchmark wants to show.
    """
    blocks = list(translated.blocks.items())
    if not blocks:
        raise ValueError("the translated model has no blocks")
    names = [name for name, _ in blocks]
    composite = blocks[0][1]
    composed = 1
    for name, block in blocks[1:]:
        composite = compose(composite, block, name=f"flat[{composed + 1} blocks]")
        composed += 1
        if composite.num_states > max_states:
            return FlatCompositionResult(
                completed=False,
                states=composite.num_states,
                transitions=composite.num_transitions(),
                blocks_composed=composed,
                total_blocks=len(names),
                ioimc=None,
                ctmc=None,
            )
    closed = hide_all_outputs(composite)
    closed = maximal_progress_cut(closed)
    ctmc = None
    if build_ctmc:
        ctmc = lump(extract_ctmc(closed)).quotient
    return FlatCompositionResult(
        completed=True,
        states=composite.num_states,
        transitions=composite.num_transitions(),
        blocks_composed=composed,
        total_blocks=len(names),
        ioimc=closed,
        ctmc=ctmc,
    )


__all__ = ["FlatCompositionResult", "flat_compose"]
