"""GSPN substrate and the SAN-style flat model of the DDS (Table 1 baseline)."""

from .dds_net import DDSNetOptions, build_dds_gspn, build_dds_san_ctmc, dds_system_down
from .net import GSPN, Marking, Place, RateFunction, Transition
from .reachability import reachable_markings, to_ctmc

__all__ = [
    "DDSNetOptions",
    "GSPN",
    "Marking",
    "Place",
    "RateFunction",
    "Transition",
    "build_dds_gspn",
    "build_dds_san_ctmc",
    "dds_system_down",
    "reachable_markings",
    "to_ctmc",
]
