"""A small generalised-stochastic-Petri-net (GSPN) substrate.

The distributed database system of Section 5.1 was originally evaluated in
[19] with composed SAN-based reward models solved by UltraSAN.  Neither
UltraSAN nor Möbius is openly available, so the comparison column of Table 1
is reproduced with this GSPN engine: places hold tokens, timed transitions
fire after exponential delays (possibly with marking-dependent rates),
immediate transitions fire in zero time according to weights, and the
reachability graph is converted into a labelled CTMC by eliminating the
vanishing markings.

The engine is deliberately general purpose — it is exercised by its own unit
tests on textbook nets — and the DDS model built on top of it lives in
:mod:`repro.baselines.gspn.dds_net`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ...ctmc import CTMC
from ...errors import AnalysisError, ModelError

#: A marking maps place names to token counts (absent places hold zero).
Marking = tuple[int, ...]

#: Rate functions receive the marking as a dict and return the firing rate.
RateFunction = Callable[[Mapping[str, int]], float]


@dataclass(frozen=True)
class Place:
    """A place of the net."""

    name: str
    initial_tokens: int = 0


@dataclass(frozen=True)
class Transition:
    """A timed or immediate transition.

    ``rate`` is either a constant or a function of the marking; immediate
    transitions use ``weight`` instead and fire in zero time with priority
    over every timed transition.
    """

    name: str
    inputs: tuple[tuple[str, int], ...]
    outputs: tuple[tuple[str, int], ...]
    inhibitors: tuple[tuple[str, int], ...] = ()
    rate: float | RateFunction | None = None
    weight: float = 1.0
    immediate: bool = False


class GSPN:
    """A generalised stochastic Petri net."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.places: dict[str, Place] = {}
        self.transitions: list[Transition] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_place(self, name: str, initial_tokens: int = 0) -> Place:
        """Add a place (names must be unique)."""
        if name in self.places:
            raise ModelError(f"{self.name}: duplicate place {name!r}")
        if initial_tokens < 0:
            raise ModelError(f"{self.name}: negative initial marking for {name!r}")
        place = Place(name, initial_tokens)
        self.places[name] = place
        return place

    def add_timed_transition(
        self,
        name: str,
        rate: float | RateFunction,
        inputs: Mapping[str, int],
        outputs: Mapping[str, int],
        inhibitors: Mapping[str, int] | None = None,
    ) -> Transition:
        """Add an exponentially timed transition."""
        transition = Transition(
            name,
            tuple(sorted(inputs.items())),
            tuple(sorted(outputs.items())),
            tuple(sorted((inhibitors or {}).items())),
            rate=rate,
        )
        self._check_transition(transition)
        self.transitions.append(transition)
        return transition

    def add_immediate_transition(
        self,
        name: str,
        inputs: Mapping[str, int],
        outputs: Mapping[str, int],
        inhibitors: Mapping[str, int] | None = None,
        weight: float = 1.0,
    ) -> Transition:
        """Add an immediate transition (fires in zero time, weighted choice)."""
        if weight <= 0:
            raise ModelError(f"{self.name}: immediate transition weight must be positive")
        transition = Transition(
            name,
            tuple(sorted(inputs.items())),
            tuple(sorted(outputs.items())),
            tuple(sorted((inhibitors or {}).items())),
            weight=weight,
            immediate=True,
        )
        self._check_transition(transition)
        self.transitions.append(transition)
        return transition

    def _check_transition(self, transition: Transition) -> None:
        for place, multiplicity in (
            *transition.inputs,
            *transition.outputs,
            *transition.inhibitors,
        ):
            if place not in self.places:
                raise ModelError(
                    f"{self.name}: transition {transition.name!r} references unknown "
                    f"place {place!r}"
                )
            if multiplicity <= 0:
                raise ModelError(
                    f"{self.name}: arc multiplicities must be positive "
                    f"({transition.name!r} / {place!r})"
                )

    # ------------------------------------------------------------------ #
    # behaviour
    # ------------------------------------------------------------------ #
    def place_order(self) -> list[str]:
        """Canonical place ordering used to encode markings as tuples."""
        return list(self.places)

    def initial_marking(self) -> Marking:
        """The initial marking as a tuple following :meth:`place_order`."""
        return tuple(self.places[name].initial_tokens for name in self.place_order())

    def marking_as_dict(self, marking: Marking) -> dict[str, int]:
        """Expose a marking as a name -> tokens mapping (for rate functions)."""
        return dict(zip(self.place_order(), marking))

    def is_enabled(self, transition: Transition, marking: Marking) -> bool:
        """Whether ``transition`` may fire in ``marking``."""
        index = {name: position for position, name in enumerate(self.place_order())}
        for place, multiplicity in transition.inputs:
            if marking[index[place]] < multiplicity:
                return False
        for place, multiplicity in transition.inhibitors:
            if marking[index[place]] >= multiplicity:
                return False
        return True

    def fire(self, transition: Transition, marking: Marking) -> Marking:
        """The marking reached by firing ``transition`` in ``marking``."""
        index = {name: position for position, name in enumerate(self.place_order())}
        tokens = list(marking)
        for place, multiplicity in transition.inputs:
            tokens[index[place]] -= multiplicity
            if tokens[index[place]] < 0:
                raise AnalysisError(
                    f"{self.name}: transition {transition.name!r} fired while disabled"
                )
        for place, multiplicity in transition.outputs:
            tokens[index[place]] += multiplicity
        return tuple(tokens)

    def rate_of(self, transition: Transition, marking: Marking) -> float:
        """Firing rate of a timed transition in ``marking``."""
        if transition.immediate or transition.rate is None:
            raise AnalysisError(f"{transition.name!r} is not a timed transition")
        if callable(transition.rate):
            value = float(transition.rate(self.marking_as_dict(marking)))
        else:
            value = float(transition.rate)
        if value < 0:
            raise AnalysisError(
                f"{self.name}: transition {transition.name!r} produced a negative rate"
            )
        return value


__all__ = ["GSPN", "Marking", "Place", "RateFunction", "Transition"]
