"""Reachability analysis of GSPNs and conversion to labelled CTMCs.

Tangible markings (no immediate transition enabled) become CTMC states;
vanishing markings (at least one immediate transition enabled) are eliminated
on the fly by distributing their incoming probability over the tangible
markings they reach, weighting competing immediate transitions by their
weights.  This is the standard GSPN solution recipe and mirrors what
UltraSAN/Möbius do for the SAN models of [19].
"""

from __future__ import annotations

from typing import Callable

from ...ctmc import CTMC
from ...errors import AnalysisError
from .net import GSPN, Marking

#: Guard against nets whose reachability graph grows without bound.
DEFAULT_MARKING_LIMIT = 2_000_000


def reachable_markings(net: GSPN, *, limit: int = DEFAULT_MARKING_LIMIT) -> list[Marking]:
    """All reachable markings (tangible and vanishing), in discovery order."""
    initial = net.initial_marking()
    seen: dict[Marking, int] = {initial: 0}
    order = [initial]
    frontier = [initial]
    while frontier:
        marking = frontier.pop()
        immediates = [
            transition
            for transition in net.transitions
            if transition.immediate and net.is_enabled(transition, marking)
        ]
        candidates = immediates or [
            transition
            for transition in net.transitions
            if not transition.immediate and net.is_enabled(transition, marking)
        ]
        for transition in candidates:
            successor = net.fire(transition, marking)
            if successor not in seen:
                if len(seen) >= limit:
                    raise AnalysisError(
                        f"{net.name}: more than {limit} reachable markings; "
                        "increase the limit or fold the net"
                    )
                seen[successor] = len(order)
                order.append(successor)
                frontier.append(successor)
    return order


def to_ctmc(
    net: GSPN,
    label_of_marking: Callable[[dict[str, int]], set[str]] | None = None,
    *,
    limit: int = DEFAULT_MARKING_LIMIT,
) -> CTMC:
    """Convert the net's reachability graph into a labelled CTMC.

    ``label_of_marking`` receives each tangible marking (as a place -> tokens
    mapping) and returns its atomic propositions, e.g. ``{"down"}``.
    """
    markings = reachable_markings(net, limit=limit)
    is_vanishing: list[bool] = []
    for marking in markings:
        vanishing = any(
            transition.immediate and net.is_enabled(transition, marking)
            for transition in net.transitions
        )
        is_vanishing.append(vanishing)
    index_of = {marking: index for index, marking in enumerate(markings)}

    tangible = [index for index, vanishing in enumerate(is_vanishing) if not vanishing]
    tangible_position = {index: position for position, index in enumerate(tangible)}

    resolution_cache: dict[int, dict[int, float]] = {}

    def resolve(index: int, trail: frozenset[int] = frozenset()) -> dict[int, float]:
        """Distribution over tangible markings reached from ``index`` in zero time."""
        if not is_vanishing[index]:
            return {index: 1.0}
        cached = resolution_cache.get(index)
        if cached is not None:
            return cached
        if index in trail:
            raise AnalysisError(f"{net.name}: cycle of immediate transitions detected")
        marking = markings[index]
        enabled = [
            transition
            for transition in net.transitions
            if transition.immediate and net.is_enabled(transition, marking)
        ]
        total_weight = sum(transition.weight for transition in enabled)
        combined: dict[int, float] = {}
        for transition in enabled:
            successor = index_of[net.fire(transition, marking)]
            for target, probability in resolve(successor, trail | {index}).items():
                share = transition.weight / total_weight * probability
                combined[target] = combined.get(target, 0.0) + share
        resolution_cache[index] = combined
        return combined

    transitions: list[tuple[int, float, int]] = []
    for index in tangible:
        marking = markings[index]
        source = tangible_position[index]
        for transition in net.transitions:
            if transition.immediate or not net.is_enabled(transition, marking):
                continue
            rate = net.rate_of(transition, marking)
            if rate <= 0:
                continue
            successor = index_of[net.fire(transition, marking)]
            for target, probability in resolve(successor).items():
                transitions.append((source, rate * probability, tangible_position[target]))

    initial_index = 0
    initial_distribution = resolve(initial_index)
    if len(initial_distribution) == 1:
        initial: int | list[float] = tangible_position[next(iter(initial_distribution))]
    else:
        vector = [0.0] * len(tangible)
        for target, probability in initial_distribution.items():
            vector[tangible_position[target]] = probability
        initial = vector

    labels = {}
    names = []
    for position, index in enumerate(tangible):
        as_dict = net.marking_as_dict(markings[index])
        names.append(",".join(f"{place}:{count}" for place, count in as_dict.items() if count))
        if label_of_marking is not None:
            props = label_of_marking(as_dict)
            if props:
                labels[position] = frozenset(props)
    return CTMC(len(tangible), transitions, initial, labels, names)


__all__ = ["DEFAULT_MARKING_LIMIT", "reachable_markings", "to_ctmc"]
