"""The SAN-style flat Petri-net model of the distributed database system.

Table 1 of the paper compares Arcade against the SAN-based reward models of
Sanders & Malhis [19].  That model differs from the Arcade model in two
relevant ways:

* it is a single *flat* stochastic model rather than a composition of
  communicating components, and
* the spare processor is treated as a **cold** spare: it cannot fail while it
  is inactive.  This is what produces the reliability discrepancy visible in
  Table 1 (SAN: 0.425082 vs. Arcade/Galileo: 0.402018) — with a cold spare
  the processor pair survives longer.

The net below reproduces that modelling style.  Identical disk clusters (and
identical controller sets) are folded into counting places, exactly in the
spirit of the reduced-base-model construction used by the SAN approach: the
marking records how many clusters currently have ``j`` failed disks rather
than which disks of which cluster failed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...casestudies.dds import DDSParameters
from ...ctmc import CTMC
from .net import GSPN
from .reachability import to_ctmc


@dataclass(frozen=True)
class DDSNetOptions:
    """Modelling switches of the SAN-style net."""

    cold_spare: bool = True
    with_repair: bool = True


def build_dds_gspn(
    parameters: DDSParameters | None = None, options: DDSNetOptions | None = None
) -> GSPN:
    """Build the folded SAN-style GSPN of the distributed database system."""
    p = parameters or DDSParameters()
    o = options or DDSNetOptions()
    net = GSPN("dds_san_style")

    # Processors: the number of failed processors (0, 1 or 2).  With a cold
    # spare only the active processor can fail.
    net.add_place("proc_down", 0)
    active_processors = 1 if o.cold_spare else 2
    net.add_timed_transition(
        "proc_failure",
        lambda marking: (
            (active_processors if marking["proc_down"] == 0 else 1)
            * p.processor_failure_rate
            if marking["proc_down"] < 2
            else 0.0
        ),
        inputs={},
        outputs={"proc_down": 1},
        inhibitors={"proc_down": 2},
    )
    if o.with_repair:
        net.add_timed_transition(
            "proc_repair",
            p.repair_rate,
            inputs={"proc_down": 1},
            outputs={},
        )

    # Controller sets: one counting place per number of failed controllers.
    for level in range(p.controllers_per_set + 1):
        net.add_place(f"cs_level_{level}", p.num_controller_sets if level == 0 else 0)
    for level in range(p.controllers_per_set):
        working = p.controllers_per_set - level
        net.add_timed_transition(
            f"cs_failure_{level}",
            _scaled_rate(f"cs_level_{level}", working * p.processor_failure_rate),
            inputs={f"cs_level_{level}": 1},
            outputs={f"cs_level_{level + 1}": 1},
        )
        if o.with_repair:
            net.add_timed_transition(
                f"cs_repair_{level + 1}",
                _scaled_rate(f"cs_level_{level + 1}", p.repair_rate),
                inputs={f"cs_level_{level + 1}": 1},
                outputs={f"cs_level_{level}": 1},
            )

    # Disk clusters: one counting place per number of failed disks.
    for level in range(p.disks_per_cluster + 1):
        net.add_place(f"cluster_level_{level}", p.num_clusters if level == 0 else 0)
    for level in range(p.disks_per_cluster):
        working = p.disks_per_cluster - level
        net.add_timed_transition(
            f"cluster_failure_{level}",
            _scaled_rate(f"cluster_level_{level}", working * p.disk_failure_rate),
            inputs={f"cluster_level_{level}": 1},
            outputs={f"cluster_level_{level + 1}": 1},
        )
        if o.with_repair:
            net.add_timed_transition(
                f"cluster_repair_{level + 1}",
                _scaled_rate(f"cluster_level_{level + 1}", p.repair_rate),
                inputs={f"cluster_level_{level + 1}": 1},
                outputs={f"cluster_level_{level}": 1},
            )
    return net


def _scaled_rate(place: str, rate_per_token: float):
    """Marking-dependent rate: ``tokens(place) * rate_per_token``."""

    def rate(marking: dict[str, int]) -> float:
        return marking[place] * rate_per_token

    return rate


def dds_system_down(parameters: DDSParameters | None = None):
    """Label function marking system-failure markings as ``down``."""
    p = parameters or DDSParameters()

    def label(marking: dict[str, int]) -> set[str]:
        if marking["proc_down"] >= 2:
            return {"down"}
        if any(
            marking[f"cs_level_{level}"] > 0
            for level in range(p.controllers_per_set, p.controllers_per_set + 1)
        ):
            return {"down"}
        failed_clusters = sum(
            marking[f"cluster_level_{level}"]
            for level in range(p.disks_down_for_cluster_failure, p.disks_per_cluster + 1)
        )
        if failed_clusters > 0:
            return {"down"}
        return set()

    return label


def build_dds_san_ctmc(
    parameters: DDSParameters | None = None, options: DDSNetOptions | None = None
) -> CTMC:
    """The labelled CTMC of the SAN-style DDS net."""
    net = build_dds_gspn(parameters, options)
    return to_ctmc(net, dds_system_down(parameters))


__all__ = ["DDSNetOptions", "build_dds_gspn", "build_dds_san_ctmc", "dds_system_down"]
