"""Arcade: architectural dependability evaluation.

A from-scratch, open-source reproduction of

    H. Boudali, P. Crouzen, B. R. Haverkort, M. Kuntz, M. I. A. Stoelinga,
    "Architectural dependability evaluation with Arcade", DSN 2008.

The package layout mirrors the paper's pipeline:

* :mod:`repro.arcade` — the Arcade modelling language (basic components,
  repair units, spare management units, fault-tree failure criteria, textual
  syntax) and its I/O-IMC semantics;
* :mod:`repro.ioimc` — Input/Output Interactive Markov Chains, parallel
  composition and hiding;
* :mod:`repro.lumping` — bisimulation minimisation and structural reductions;
* :mod:`repro.composer` — compositional aggregation;
* :mod:`repro.ctmc` — labelled CTMCs, steady-state/transient/absorbing
  analysis and a CSL-style query layer;
* :mod:`repro.analysis` — the end-to-end :class:`~repro.analysis.ArcadeEvaluator`;
* :mod:`repro.distributions` — phase-type time-to-failure/repair distributions;
* :mod:`repro.baselines` — the comparison points of Table 1 (a GSPN/SAN-style
  flat model, a Galileo-style no-repair fault-tree evaluator) and a
  non-compositional generator;
* :mod:`repro.simulation` — a discrete-event Monte-Carlo cross-check;
* :mod:`repro.casestudies` — the distributed database system and the reactor
  cooling system of Section 5.

Quickstart::

    from repro import quickstart_model
    from repro.analysis import ArcadeEvaluator

    model = quickstart_model()
    evaluator = ArcadeEvaluator(model)
    print(evaluator.availability(), evaluator.reliability(1000.0))
"""

from .analysis import ArcadeEvaluator, EvaluationReport
from .arcade import (
    ArcadeModel,
    BasicComponent,
    RepairStrategy,
    RepairUnit,
    SpareManagementUnit,
    down,
    k_of_n,
    parse_expression,
    spare_group,
)
from .distributions import Erlang, Exponential, HyperExponential, PhaseType

__version__ = "1.0.0"


def quickstart_model() -> ArcadeModel:
    """A tiny two-processor example (the paper's Section 3.4 illustration).

    Two redundant processors, each with its own dedicated repair unit; the
    system is down when both processors are down.
    """
    model = ArcadeModel(name="two_redundant_processors")
    for name in ("proc_a", "proc_b"):
        model.add_component(
            BasicComponent(
                name,
                time_to_failures=Exponential(1.0 / 2000.0),
                time_to_repairs=Exponential(1.0),
            )
        )
        model.add_repair_unit(RepairUnit(f"{name}.rep", [name], RepairStrategy.DEDICATED))
    model.set_system_down(down("proc_a") & down("proc_b"))
    return model


__all__ = [
    "ArcadeEvaluator",
    "ArcadeModel",
    "BasicComponent",
    "Erlang",
    "EvaluationReport",
    "Exponential",
    "HyperExponential",
    "PhaseType",
    "RepairStrategy",
    "RepairUnit",
    "SpareManagementUnit",
    "down",
    "k_of_n",
    "parse_expression",
    "quickstart_model",
    "spare_group",
    "__version__",
]
