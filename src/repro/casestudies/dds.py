"""The Distributed Database System (DDS) case study (Section 5.1).

The system consists of two processors (one of which is a cold-standby-style
spare managed by an SMU), four disk controllers split into two sets, and 24
hard disks in six clusters of four.  The processors share one FCFS repair
unit; every controller set and every disk cluster has its own FCFS repair
unit.  The system is down when (1) both processors are down, or (2) some
controller set has no operational controller, or (3) more than one disk in a
cluster is down.

Rates (per hour): processor and controller failures ``1/2000``, disk
failures ``1/6000``, every repair ``1``; the mission time of Table 1 is five
weeks (840 hours).

The module provides both the paper's instance and a parametric generator
(used by the scaling benchmarks), the hierarchical composition order for the
compositional-aggregation pipeline, and a modular decomposition into
independent subsystems that serves as a fast cross-check of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import ArcadeEvaluator, ModularEvaluator
from ..arcade import (
    ArcadeModel,
    BasicComponent,
    RepairStrategy,
    RepairUnit,
    SpareManagementUnit,
    down,
    k_of_n,
    spare_group,
)
from ..arcade.expressions import And, Expression, Literal, Or
from ..arcade.semantics import TranslatedModel
from ..composer import CompositionOrder, hierarchical_order
from ..distributions import Exponential
from .orders import ORDER_CHOICES, validate_order_choice

#: Failure rate of processors and disk controllers (per hour).
PROCESSOR_FAILURE_RATE = 1.0 / 2000.0
#: Failure rate of hard disks (per hour).
DISK_FAILURE_RATE = 1.0 / 6000.0
#: Repair rate of every component (per hour).
REPAIR_RATE = 1.0
#: Mission time of Table 1: five weeks, in hours.
MISSION_TIME_HOURS = 5.0 * 7.0 * 24.0


@dataclass(frozen=True)
class DDSParameters:
    """Configuration of the (parametric) distributed database system."""

    num_controller_sets: int = 2
    controllers_per_set: int = 2
    num_clusters: int = 6
    disks_per_cluster: int = 4
    disks_down_for_cluster_failure: int = 2
    processor_failure_rate: float = PROCESSOR_FAILURE_RATE
    disk_failure_rate: float = DISK_FAILURE_RATE
    repair_rate: float = REPAIR_RATE


def controller_name(set_index: int, position: int, parameters: DDSParameters) -> str:
    """Name of the ``position``-th controller of controller set ``set_index``."""
    return f"dc_{set_index * parameters.controllers_per_set + position + 1}"


def disk_name(cluster_index: int, position: int, parameters: DDSParameters) -> str:
    """Name of the ``position``-th disk of cluster ``cluster_index``."""
    return f"d_{cluster_index * parameters.disks_per_cluster + position + 1}"


def build_dds_model(parameters: DDSParameters | None = None) -> ArcadeModel:
    """Build the Arcade model of the distributed database system."""
    p = parameters or DDSParameters()
    model = ArcadeModel(name="distributed_database_system")

    # Processors: a primary and a spare managed by an SMU, shared FCFS repair.
    model.add_component(
        BasicComponent(
            "pp",
            time_to_failures=Exponential(p.processor_failure_rate),
            time_to_repairs=Exponential(p.repair_rate),
        )
    )
    model.add_component(
        BasicComponent(
            "ps",
            operational_modes=[spare_group()],
            time_to_failures=[
                Exponential(p.processor_failure_rate),  # inactive
                Exponential(p.processor_failure_rate),  # active
            ],
            time_to_repairs=Exponential(p.repair_rate),
        )
    )
    model.add_spare_unit(SpareManagementUnit("p_smu", primary="pp", spares=["ps"]))
    model.add_repair_unit(RepairUnit("p_rep", ["pp", "ps"], RepairStrategy.FCFS))

    # Disk controllers, grouped into sets; one FCFS repair unit per set.
    for set_index in range(p.num_controller_sets):
        names = []
        for position in range(p.controllers_per_set):
            name = controller_name(set_index, position, p)
            names.append(name)
            model.add_component(
                BasicComponent(
                    name,
                    time_to_failures=Exponential(p.processor_failure_rate),
                    time_to_repairs=Exponential(p.repair_rate),
                )
            )
        model.add_repair_unit(
            RepairUnit(f"cs_rep_{set_index + 1}", names, RepairStrategy.FCFS)
        )

    # Disks, grouped into clusters; one FCFS repair unit per cluster.
    for cluster_index in range(p.num_clusters):
        names = []
        for position in range(p.disks_per_cluster):
            name = disk_name(cluster_index, position, p)
            names.append(name)
            model.add_component(
                BasicComponent(
                    name,
                    time_to_failures=Exponential(p.disk_failure_rate),
                    time_to_repairs=Exponential(p.repair_rate),
                )
            )
        model.add_repair_unit(
            RepairUnit(f"cluster_rep_{cluster_index + 1}", names, RepairStrategy.FCFS)
        )

    model.set_system_down(system_down_expression(p))
    return model


def system_down_expression(parameters: DDSParameters | None = None) -> Expression:
    """The SYSTEM DOWN fault tree of Section 5.1.1."""
    p = parameters or DDSParameters()
    children: list[Expression] = [And([down("pp"), down("ps")])]
    for set_index in range(p.num_controller_sets):
        children.append(
            And(
                [
                    down(controller_name(set_index, position, p))
                    for position in range(p.controllers_per_set)
                ]
            )
        )
    for cluster_index in range(p.num_clusters):
        children.append(
            k_of_n(
                p.disks_down_for_cluster_failure,
                [
                    down(disk_name(cluster_index, position, p))
                    for position in range(p.disks_per_cluster)
                ],
            )
        )
    return Or(children)


def dds_subsystem_groups(parameters: DDSParameters | None = None) -> list[list[str]]:
    """The subsystem decomposition used for the composition order."""
    p = parameters or DDSParameters()
    groups: list[list[str]] = [["pp", "ps", "p_smu", "p_rep"]]
    for set_index in range(p.num_controller_sets):
        groups.append(
            [
                controller_name(set_index, position, p)
                for position in range(p.controllers_per_set)
            ]
            + [f"cs_rep_{set_index + 1}"]
        )
    for cluster_index in range(p.num_clusters):
        groups.append(
            [disk_name(cluster_index, position, p) for position in range(p.disks_per_cluster)]
            + [f"cluster_rep_{cluster_index + 1}"]
        )
    return groups


def dds_composition_order(
    translated: TranslatedModel, parameters: DDSParameters | None = None
) -> CompositionOrder:
    """Hierarchical composition order for the (possibly parametric) DDS."""
    groups = dds_subsystem_groups(parameters)
    present = set(translated.blocks)
    filtered = [[name for name in group if name in present] for group in groups]
    return hierarchical_order(translated, [group for group in filtered if group])


def build_dds_evaluator(
    parameters: DDSParameters | None = None,
    *,
    reduction: str = "strong",
    order: str = "hierarchical",
    cache="off",
    jobs: int = 1,
    telemetry=None,
    retry=None,
    state_budget: int | None = None,
) -> ArcadeEvaluator:
    """Evaluator for the full compositional-aggregation pipeline on the DDS.

    ``order`` selects the composition-order policy: ``"hierarchical"`` (the
    paper's subsystem decomposition, default), ``"greedy"`` (the composer's
    signal-closing heuristic) or ``"auto"`` (the planner of
    :mod:`repro.planner`).  ``cache`` enables the isomorphism-aware
    quotient cache (``"on"``/``"off"`` or a shared
    :class:`~repro.composer.QuotientCache`): the six disk clusters are
    isomorphic up to signal renaming, so with the cache each replicated
    subtree is composed and minimised once.  ``jobs`` > 1 aggregates the
    independent subsystem subtrees in parallel worker processes.
    ``telemetry`` threads an explicit
    :class:`~repro.telemetry.Telemetry` session through the evaluator.
    """
    validate_order_choice(order)
    model = build_dds_model(parameters)
    evaluator = ArcadeEvaluator(
        model, reduction=reduction, cache=cache, jobs=jobs, telemetry=telemetry,
        retry=retry, state_budget=state_budget,
    )
    if order == "hierarchical":
        evaluator.order = dds_composition_order(evaluator.translated, parameters)
    elif order == "auto":
        evaluator.order = "auto"
    return evaluator


def build_dds_subsystem_models(
    parameters: DDSParameters | None = None,
) -> tuple[dict[str, ArcadeModel], Expression]:
    """Decompose the DDS into independent subsystems for modular evaluation.

    The processor pair, each controller set and each disk cluster share no
    components or repair units, so evaluating them separately and combining
    the results through the top-level OR is exact.  This provides a fast
    cross-check of the Table 1 numbers that does not rely on the full
    compositional pipeline.
    """
    p = parameters or DDSParameters()
    subsystems: dict[str, ArcadeModel] = {}

    processors = ArcadeModel(name="dds_processors")
    processors.add_component(
        BasicComponent(
            "pp",
            time_to_failures=Exponential(p.processor_failure_rate),
            time_to_repairs=Exponential(p.repair_rate),
        )
    )
    processors.add_component(
        BasicComponent(
            "ps",
            operational_modes=[spare_group()],
            time_to_failures=[
                Exponential(p.processor_failure_rate),
                Exponential(p.processor_failure_rate),
            ],
            time_to_repairs=Exponential(p.repair_rate),
        )
    )
    processors.add_spare_unit(SpareManagementUnit("p_smu", primary="pp", spares=["ps"]))
    processors.add_repair_unit(RepairUnit("p_rep", ["pp", "ps"], RepairStrategy.FCFS))
    processors.set_system_down(And([down("pp"), down("ps")]))
    subsystems["processors"] = processors

    for set_index in range(p.num_controller_sets):
        subsystem = ArcadeModel(name=f"dds_controller_set_{set_index + 1}")
        names = []
        for position in range(p.controllers_per_set):
            name = controller_name(set_index, position, p)
            names.append(name)
            subsystem.add_component(
                BasicComponent(
                    name,
                    time_to_failures=Exponential(p.processor_failure_rate),
                    time_to_repairs=Exponential(p.repair_rate),
                )
            )
        subsystem.add_repair_unit(
            RepairUnit(f"cs_rep_{set_index + 1}", names, RepairStrategy.FCFS)
        )
        subsystem.set_system_down(And([down(name) for name in names]))
        subsystems[f"controller_set_{set_index + 1}"] = subsystem

    for cluster_index in range(p.num_clusters):
        subsystem = ArcadeModel(name=f"dds_cluster_{cluster_index + 1}")
        names = []
        for position in range(p.disks_per_cluster):
            name = disk_name(cluster_index, position, p)
            names.append(name)
            subsystem.add_component(
                BasicComponent(
                    name,
                    time_to_failures=Exponential(p.disk_failure_rate),
                    time_to_repairs=Exponential(p.repair_rate),
                )
            )
        subsystem.add_repair_unit(
            RepairUnit(f"cluster_rep_{cluster_index + 1}", names, RepairStrategy.FCFS)
        )
        subsystem.set_system_down(
            k_of_n(p.disks_down_for_cluster_failure, [down(name) for name in names])
        )
        subsystems[f"cluster_{cluster_index + 1}"] = subsystem

    system_down = Or([Literal(name, None) for name in subsystems])
    return subsystems, system_down


def build_dds_modular_evaluator(
    parameters: DDSParameters | None = None, *, reduction: str = "strong"
) -> ModularEvaluator:
    """Modular evaluator over the independent DDS subsystems."""
    subsystems, system_down = build_dds_subsystem_models(parameters)
    return ModularEvaluator(subsystems, system_down, reduction=reduction)


def dds_parameters_from_values(values) -> DDSParameters:
    """Resolve a sweep axis-value assignment to :class:`DDSParameters`.

    Structural axes (cluster and disk counts) arrive as floats from the
    sweep engine and are rounded back to integers.
    """
    defaults = DDSParameters()
    return DDSParameters(
        num_clusters=int(round(values.get("num_clusters", defaults.num_clusters))),
        disks_per_cluster=int(
            round(values.get("disks_per_cluster", defaults.disks_per_cluster))
        ),
        processor_failure_rate=float(
            values.get("processor_failure_rate", defaults.processor_failure_rate)
        ),
        disk_failure_rate=float(
            values.get("disk_failure_rate", defaults.disk_failure_rate)
        ),
        repair_rate=float(values.get("repair_rate", defaults.repair_rate)),
    )


def dds_sweep_factory():
    """The DDS as a sweepable model family (:mod:`repro.sweep`).

    Axes: the three rates (eligible for finite-difference sensitivities)
    plus the structural ``num_clusters`` / ``disks_per_cluster`` counts.
    The composition-order hook rebuilds the hierarchical subsystem order for
    whatever structure a point asks for, and the importance components cover
    one representative of each subsystem kind (primary processor, first
    controller, first disk).
    """
    from ..sweep import SweepFactory

    defaults = DDSParameters()

    def build(values) -> ArcadeModel:
        return build_dds_model(dds_parameters_from_values(values))

    def order(translated: TranslatedModel, values) -> CompositionOrder:
        return dds_composition_order(translated, dds_parameters_from_values(values))

    return SweepFactory(
        name="dds",
        build=build,
        base={
            "processor_failure_rate": defaults.processor_failure_rate,
            "disk_failure_rate": defaults.disk_failure_rate,
            "repair_rate": defaults.repair_rate,
            "num_clusters": float(defaults.num_clusters),
            "disks_per_cluster": float(defaults.disks_per_cluster),
        },
        order=order,
        rate_axes=("processor_failure_rate", "disk_failure_rate", "repair_rate"),
        importance_components=("pp", "dc_1", "d_1"),
    )


def main(argv: list[str] | None = None) -> None:
    """CLI: run the DDS case study under a chosen reduction mode.

    ``python -m repro.casestudies.dds --reduction branching`` reproduces the
    Table-1 numbers with the reduction the paper's CADP tool chain actually
    used; ``strong`` and ``weak`` allow head-to-head comparisons of the
    three bisimulation variants on the same model.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Distributed Database System case study (Section 5.1)"
    )
    parser.add_argument(
        "--reduction",
        choices=("strong", "weak", "branching"),
        default="strong",
        help="bisimulation variant applied between composition steps",
    )
    parser.add_argument(
        "--clusters",
        type=int,
        default=DDSParameters().num_clusters,
        help="number of disk clusters (paper: 6); scales the model",
    )
    parser.add_argument(
        "--order",
        choices=ORDER_CHOICES,
        default="hierarchical",
        help="composition-order policy: the paper's hierarchical decomposition, "
        "the greedy signal-closing heuristic, or the cost-model-guided planner",
    )
    parser.add_argument(
        "--cache",
        choices=("on", "off"),
        default="on",
        help="isomorphism-aware quotient cache: compose each replicated "
        "subtree (disk cluster, controller set) once and rebase the copies",
    )
    parser.add_argument(
        "--disks-per-cluster",
        type=int,
        default=DDSParameters().disks_per_cluster,
        help="disks per cluster (paper: 4); scales the replicated subtrees",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel subtree aggregation (1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=("compose", "simulate"),
        default="compose",
        help="compose: the paper's compositional-aggregation pipeline; "
        "simulate: RESTART rare-event simulation (no state space built)",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=256,
        help="simulation roots per batch (simulate backend only)",
    )
    parser.add_argument(
        "--rel-error",
        type=float,
        default=None,
        help="target relative CI half-width; keeps adding replication "
        "batches until reached (simulate backend only)",
    )
    parser.add_argument(
        "--sim-horizon",
        type=float,
        default=10_000.0,
        help="time horizon of each simulated trajectory, hours",
    )
    parser.add_argument(
        "--sim-seed",
        type=int,
        default=0,
        help="seed of the simulation RNG stream",
    )
    from ..telemetry import (
        add_observability_arguments,
        configure_logging,
        get_logger,
        telemetry_session,
    )
    from .sweep_cli import add_resilience_arguments, add_sweep_arguments, run_sweep_cli

    add_observability_arguments(parser)
    add_sweep_arguments(parser)
    add_resilience_arguments(parser)
    args = parser.parse_args(argv)
    configure_logging(args)
    log = get_logger("dds")

    with telemetry_session("dds", args, seeds={"sim_seed": args.sim_seed}):
        _run(args, log, run_sweep_cli)


def _run(args, log, run_sweep_cli) -> None:
    import time

    if args.sweep:
        import dataclasses

        # --clusters / --disks-per-cluster pin the structural axes of the
        # swept family (they stay sweepable via --sweep-grid num_clusters=...).
        factory = dds_sweep_factory()
        factory = dataclasses.replace(
            factory,
            base={
                **factory.base,
                "num_clusters": float(args.clusters),
                "disks_per_cluster": float(args.disks_per_cluster),
            },
        )
        # Default when no axes are given: a small rate grid around Table 1.
        run_sweep_cli(
            factory,
            args,
            default_grid={
                "disk_failure_rate": [
                    DISK_FAILURE_RATE / 2.0,
                    DISK_FAILURE_RATE,
                    DISK_FAILURE_RATE * 2.0,
                ],
                "repair_rate": [0.5, 1.0, 2.0],
            },
        )
        return

    parameters = DDSParameters(
        num_clusters=args.clusters, disks_per_cluster=args.disks_per_cluster
    )
    if args.backend == "simulate":
        started = time.perf_counter()
        evaluator = ArcadeEvaluator(
            build_dds_model(parameters),
            backend="simulate",
            sim_seed=args.sim_seed,
            sim_horizon=args.sim_horizon,
            sim_replications=args.replications,
            sim_rel_error=args.rel_error,
        )
        availability = evaluator.availability()
        interval = evaluator.simulation_interval
        reliability = evaluator.reliability(MISSION_TIME_HOURS)
        elapsed = time.perf_counter() - started
        log.info("DDS (%s clusters), backend=simulate (RESTART)", args.clusters)
        log.info("  availability          %.9f", availability)
        if interval is not None:
            log.info("  unavailability CI     %s", interval.describe())
        log.info("  reliability (5 weeks) %.9f", reliability)
        log.info("  wall-clock %.1fs", elapsed)
        return
    from ..composer import resolve_cache
    from .sweep_cli import load_cache_file, retry_from_args, save_cache_file

    started = time.perf_counter()
    cache = resolve_cache(args.cache)
    load_cache_file(cache, args)
    evaluator = build_dds_evaluator(
        parameters,
        reduction=args.reduction,
        order=args.order,
        cache=cache if cache is not None else "off",
        jobs=args.jobs,
        retry=retry_from_args(args),
        state_budget=args.state_budget,
    )
    availability = evaluator.availability()
    reliability = evaluator.reliability(MISSION_TIME_HOURS)
    elapsed = time.perf_counter() - started
    statistics = evaluator.composed.statistics
    jobs_note = f", jobs={args.jobs}" if args.jobs > 1 else ""
    log.info(
        "DDS (%s clusters), reduction=%s, order=%s%s",
        args.clusters,
        args.reduction,
        args.order,
        jobs_note,
    )
    if evaluator.composed.plan_report is not None:
        log.info("  %s", evaluator.composed.plan_report.summary())
    if evaluator.cache is not None:
        summary = evaluator.cache.summary()
        log.info(
            "  cache: %s hits / %s misses (hit rate %.0f%%), saved %.2fs",
            summary["hits"],
            summary["misses"],
            100.0 * summary["hit_rate"],
            summary["saved_seconds"],
        )
    log.info(
        "  final CTMC: %s states / %s transitions",
        evaluator.ctmc.num_states,
        evaluator.ctmc.num_transitions,
    )
    log.info(
        "  largest intermediate: %s states over %s composition steps",
        statistics.largest_intermediate_states,
        len(statistics.steps),
    )
    log.info("  availability          %.9f", availability)
    log.info("  reliability (5 weeks) %.9f", reliability)
    if statistics.serial_fallbacks or statistics.worker_retries:
        log.warning(
            "  resilience: %s retry(ies), %s timeout(s), %s pool break(s), "
            "%s serial fallback(s)",
            statistics.worker_retries,
            statistics.worker_timeouts,
            statistics.pool_breaks,
            statistics.serial_fallbacks,
        )
    log.info(
        "  wall-clock %.1fs (compose %.1fs, reduce %.1fs)",
        elapsed,
        statistics.total_compose_seconds,
        statistics.total_reduce_seconds,
    )
    save_cache_file(cache, args)


if __name__ == "__main__":
    main()


__all__ = [
    "DDSParameters",
    "DISK_FAILURE_RATE",
    "MISSION_TIME_HOURS",
    "ORDER_CHOICES",
    "PROCESSOR_FAILURE_RATE",
    "REPAIR_RATE",
    "build_dds_evaluator",
    "build_dds_model",
    "build_dds_modular_evaluator",
    "build_dds_subsystem_models",
    "controller_name",
    "dds_composition_order",
    "dds_parameters_from_values",
    "dds_subsystem_groups",
    "dds_sweep_factory",
    "disk_name",
    "system_down_expression",
]
