"""The paper's case studies (Section 5) and parametric benchmark workloads."""

from . import dds, rcs, workloads
from .dds import (
    DDSParameters,
    build_dds_evaluator,
    build_dds_model,
    build_dds_modular_evaluator,
    dds_sweep_factory,
)
from .rcs import (
    RCSParameters,
    build_heat_exchange_evaluator,
    build_pump_evaluator,
    build_rcs_model,
    build_rcs_modular_evaluator,
    rcs_sweep_factory,
)
from .workloads import (
    fdep_chain_model,
    redundant_array_model,
    series_of_parallel_groups,
    series_of_parallel_model,
)

__all__ = [
    "DDSParameters",
    "RCSParameters",
    "build_dds_evaluator",
    "build_dds_model",
    "build_dds_modular_evaluator",
    "build_heat_exchange_evaluator",
    "build_pump_evaluator",
    "build_rcs_model",
    "build_rcs_modular_evaluator",
    "dds",
    "dds_sweep_factory",
    "fdep_chain_model",
    "rcs",
    "rcs_sweep_factory",
    "redundant_array_model",
    "series_of_parallel_groups",
    "series_of_parallel_model",
    "workloads",
]
