"""The paper's case studies (Section 5) and parametric benchmark workloads."""

from . import dds, rcs, workloads
from .dds import (
    DDSParameters,
    build_dds_evaluator,
    build_dds_model,
    build_dds_modular_evaluator,
)
from .rcs import (
    RCSParameters,
    build_heat_exchange_evaluator,
    build_pump_evaluator,
    build_rcs_model,
    build_rcs_modular_evaluator,
)
from .workloads import (
    fdep_chain_model,
    redundant_array_model,
    series_of_parallel_groups,
    series_of_parallel_model,
)

__all__ = [
    "DDSParameters",
    "RCSParameters",
    "build_dds_evaluator",
    "build_dds_model",
    "build_dds_modular_evaluator",
    "build_heat_exchange_evaluator",
    "build_pump_evaluator",
    "build_rcs_model",
    "build_rcs_modular_evaluator",
    "dds",
    "fdep_chain_model",
    "rcs",
    "redundant_array_model",
    "series_of_parallel_groups",
    "series_of_parallel_model",
    "workloads",
]
