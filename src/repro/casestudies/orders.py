"""Composition-order policies shared by the case-study CLIs."""

from __future__ import annotations

#: Order policies of the case-study CLIs and evaluator builders: the
#: paper's hand-written hierarchical decomposition, the signal-closing
#: greedy heuristic (``Composer.default_order``) or the cost-model-guided
#: planner of :mod:`repro.planner`.
ORDER_CHOICES = ("hierarchical", "greedy", "auto")


def validate_order_choice(order: str) -> None:
    """Raise :class:`ValueError` unless ``order`` is a known policy name."""
    if order not in ORDER_CHOICES:
        raise ValueError(f"unknown order {order!r} (expected one of {ORDER_CHOICES})")


__all__ = ["ORDER_CHOICES", "validate_order_choice"]
