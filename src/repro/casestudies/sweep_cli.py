"""Shared ``--sweep`` command-line plumbing for the case-study CLIs.

Both case studies expose the same sweep vocabulary::

    python -m repro.casestudies.dds --sweep \\
        --sweep-grid disk_failure_rate=1e-4,1.6667e-4,2.5e-4 \\
        --sweep-grid repair_rate=0.5,1.0,2.0 \\
        --sweep-prior processor_failure_rate=2e-4,1e-3 \\
        --sweep-lhs 32 --cache on --jobs 2 \\
        --sweep-out results/dds_sweep

Grid axes are explicit value lists, priors are ``low,high[,log|linear]``
ranges sampled by Latin hypercube, and the results land in the columnar
store (``<out>.npz`` + ``<out>.manifest.json``) of :mod:`repro.sweep.store`.
"""

from __future__ import annotations

import argparse

from ..errors import SweepError
from ..sweep import Prior, SweepConfig, SweepResult, run_sweep
from ..telemetry import get_logger

log = get_logger("sweep")


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the ``--sweep*`` options on a case-study CLI parser."""
    group = parser.add_argument_group("parameter sweeps")
    group.add_argument(
        "--sweep",
        action="store_true",
        help="run a parameter sweep over the model family instead of a "
        "single evaluation",
    )
    group.add_argument(
        "--sweep-grid",
        action="append",
        default=[],
        metavar="AXIS=V1,V2,...",
        help="grid axis with explicit values (repeatable; full Cartesian "
        "product across axes)",
    )
    group.add_argument(
        "--sweep-prior",
        action="append",
        default=[],
        metavar="AXIS=LOW,HIGH[,log|linear]",
        help="uncertainty prior for Latin-hypercube sampling (repeatable; "
        "default scale: log-uniform)",
    )
    group.add_argument(
        "--sweep-lhs",
        type=int,
        default=0,
        metavar="N",
        help="number of Latin-hypercube samples over the priors",
    )
    group.add_argument(
        "--sweep-out",
        default=None,
        metavar="BASE",
        help="write the columnar results store to BASE.npz + "
        "BASE.manifest.json",
    )
    group.add_argument(
        "--root-seed",
        type=int,
        default=0,
        help="root seed of the per-point SeedSequence spawning discipline",
    )
    group.add_argument(
        "--fd-step",
        type=float,
        default=0.05,
        help="relative step of the central-difference rate sensitivities",
    )
    group.add_argument(
        "--no-importance",
        action="store_true",
        help="skip the Birnbaum / improvement-potential conditioned "
        "evaluations",
    )
    group.add_argument(
        "--sweep-checkpoint",
        default=None,
        metavar="BASE",
        help="crash-safe checkpoint pair (BASE.ckpt.npz + BASE.ckpt.cache.npz) "
        "written as points complete; defaults to the --sweep-out base",
    )
    group.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="write the checkpoint every N completed evaluations",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="replay a matching checkpoint before evaluating anything live "
        "(bit-identical to an uninterrupted run)",
    )
    group.add_argument(
        "--isolate-failures",
        action="store_true",
        help="a point whose evaluation raises a library error becomes an "
        "error row instead of killing the sweep",
    )


def add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the shared resilience options on a case-study CLI parser."""
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--cache-file",
        default=None,
        metavar="PATH",
        help="persist the quotient cache: load it (checksummed, corrupt "
        "entries quarantined) before evaluating and save it atomically after",
    )
    group.add_argument(
        "--state-budget",
        type=int,
        default=None,
        metavar="STATES",
        help="per-step ceiling on the pre-reduction state count; a step that "
        "would exceed it fails fast with StateBudgetError instead of "
        "exhausting memory",
    )
    group.add_argument(
        "--retry-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per parallel subtree task before the serial fallback",
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task timeout of the parallel subtree dispatch "
        "(default: no timeout)",
    )
    group.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="base backoff between retry rounds (doubles per round)",
    )
    group.add_argument(
        "--no-serial-fallback",
        action="store_true",
        help="fail the evaluation when a subtree exhausts its retries "
        "instead of recomputing it serially in the parent",
    )


def retry_from_args(args: argparse.Namespace):
    """Build the :class:`~repro.resilience.RetryPolicy` the CLI asked for.

    Returns ``None`` when every knob is at its default, so the composer's
    own default policy applies unchanged.
    """
    from ..resilience import RetryPolicy

    attempts = getattr(args, "retry_attempts", 3)
    timeout = getattr(args, "task_timeout", None)
    backoff = getattr(args, "retry_backoff", 0.0)
    fallback = not getattr(args, "no_serial_fallback", False)
    if attempts == 3 and timeout is None and backoff == 0.0 and fallback:
        return None
    return RetryPolicy(
        max_attempts=attempts,
        timeout_seconds=timeout,
        backoff_seconds=backoff,
        serial_fallback=fallback,
    )


def load_cache_file(cache, args: argparse.Namespace) -> None:
    """Warm ``cache`` from ``--cache-file`` when the file exists."""
    import os

    path = getattr(args, "cache_file", None)
    if cache is None or path is None or not os.path.exists(path):
        return
    from ..resilience import load_cache

    _, report = load_cache(path, cache)
    log.info(
        "  cache file: loaded %s entries from %s", report.loaded, report.path
    )
    if report.quarantined:
        log.warning(
            "  cache file: quarantined %s corrupt entries (%s)",
            report.quarantined,
            ", ".join(report.quarantined_keys),
        )


def save_cache_file(cache, args: argparse.Namespace) -> None:
    """Persist ``cache`` to ``--cache-file`` (atomic, checksummed)."""
    path = getattr(args, "cache_file", None)
    if cache is None or path is None:
        return
    from ..resilience import save_cache

    stored = save_cache(cache, path)
    log.info("  cache file: saved %s entries to %s", stored, path)


def parse_grid_specs(specs: list[str]) -> dict[str, list[float]]:
    """``AXIS=V1,V2,...`` option strings to a grid mapping."""
    grid: dict[str, list[float]] = {}
    for spec in specs:
        axis, _, tail = spec.partition("=")
        if not axis or not tail:
            raise SweepError(f"cannot parse grid spec {spec!r} (want AXIS=V1,V2,...)")
        try:
            grid[axis] = [float(token) for token in tail.split(",")]
        except ValueError as error:
            raise SweepError(f"cannot parse grid spec {spec!r}: {error}") from error
    return grid


def parse_prior_specs(specs: list[str]) -> dict[str, Prior]:
    """``AXIS=LOW,HIGH[,log|linear]`` option strings to a prior mapping."""
    priors: dict[str, Prior] = {}
    for spec in specs:
        axis, _, tail = spec.partition("=")
        tokens = tail.split(",") if tail else []
        if not axis or len(tokens) not in (2, 3):
            raise SweepError(
                f"cannot parse prior spec {spec!r} (want AXIS=LOW,HIGH[,log|linear])"
            )
        scale = tokens[2].strip().lower() if len(tokens) == 3 else "log"
        if scale not in ("log", "linear"):
            raise SweepError(
                f"cannot parse prior spec {spec!r}: scale must be 'log' or 'linear'"
            )
        try:
            low, high = float(tokens[0]), float(tokens[1])
        except ValueError as error:
            raise SweepError(f"cannot parse prior spec {spec!r}: {error}") from error
        priors[axis] = Prior(low, high, log=scale == "log")
    return priors


def run_sweep_cli(factory, args: argparse.Namespace, *, default_grid=None) -> SweepResult:
    """Run the sweep described by the parsed CLI options and print a summary."""
    grid = parse_grid_specs(args.sweep_grid)
    priors = parse_prior_specs(args.sweep_prior)
    if not grid and not priors:
        if default_grid is None:
            raise SweepError(
                "the sweep needs at least one --sweep-grid or --sweep-prior axis"
            )
        grid = dict(default_grid)
    from ..composer import resolve_cache

    checkpoint = getattr(args, "sweep_checkpoint", None)
    if checkpoint is None and getattr(args, "resume", False):
        checkpoint = args.sweep_out
    if getattr(args, "resume", False) and checkpoint is None:
        raise SweepError("--resume needs --sweep-checkpoint (or --sweep-out)")
    # Resolve the cache here so --cache-file can warm it before the sweep
    # and persist it afterwards (run_sweep accepts the instance unchanged).
    cache = resolve_cache(getattr(args, "cache", "on"))
    load_cache_file(cache, args)
    config = SweepConfig(
        grid=grid,
        priors=priors,
        lhs_samples=args.sweep_lhs if priors else 0,
        backend=getattr(args, "backend", "compose"),
        reduction=getattr(args, "reduction", "strong"),
        cache=cache,
        jobs=getattr(args, "jobs", 1),
        root_seed=args.root_seed,
        fd_step=args.fd_step,
        importance=not args.no_importance,
        sim_replications=getattr(args, "replications", 256),
        sim_rel_error=getattr(args, "rel_error", None),
        sim_horizon=getattr(args, "sim_horizon", 10_000.0),
        isolate_failures=getattr(args, "isolate_failures", False),
        state_budget=getattr(args, "state_budget", None),
        retry=retry_from_args(args),
        checkpoint=checkpoint,
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        resume=getattr(args, "resume", False),
    )
    result = run_sweep(factory, config)
    _log_summary(factory.name, result)
    save_cache_file(cache, args)
    if args.sweep_out:
        npz_path, manifest_path = result.save(args.sweep_out)
        log.info("  store: %s + %s", npz_path, manifest_path)
    return result


def _log_summary(name: str, result: SweepResult) -> None:
    totals = result.manifest["totals"]
    log.info(
        "%s sweep: %s points, %s evaluations, %.1fs",
        name,
        totals["points"],
        totals["evaluations"],
        totals["seconds"],
    )
    _log_error_rows(result)
    cache = result.manifest.get("cache")
    if cache:
        log.info(
            "  cache: %s hits / %s misses (hit rate %.0f%%), saved %.2fs",
            cache["hits"],
            cache["misses"],
            100.0 * cache["hit_rate"],
            cache["saved_seconds"],
        )
    for row in result.sensitivities:
        log.info(
            "  dU/d %s: %+.3e (elasticity %+.3f)",
            row["axis"],
            row["derivative"],
            row["elasticity"],
        )
    for row in result.importance:
        log.info(
            "  importance %s: Birnbaum %.3e, improvement potential %.3e",
            row["component"],
            row["birnbaum"],
            row["improvement_potential"],
        )
    distributions = result.manifest.get("distributions", {}).get("lhs")
    if distributions:
        summary = distributions["unavailability"]
        quantiles = summary["quantiles"]
        log.info(
            "  LHS unavailability: mean %.3e, 90%% interval [%.3e, %.3e]",
            summary["mean"],
            quantiles["0.05"],
            quantiles["0.95"],
        )


def _log_error_rows(result: SweepResult) -> None:
    errors = result.manifest["totals"].get("errors", 0)
    if errors:
        log.warning("  %s point(s) failed and were isolated as error rows", errors)


__all__ = [
    "add_resilience_arguments",
    "add_sweep_arguments",
    "load_cache_file",
    "parse_grid_specs",
    "parse_prior_specs",
    "retry_from_args",
    "run_sweep_cli",
    "save_cache_file",
]
