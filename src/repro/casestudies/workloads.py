"""Parametric workload generators for the scaling and ablation benchmarks.

The paper's evaluation is built around two fixed case studies; the
benchmarks additionally sweep model size and design parameters (number of
redundant components, repair strategy, gate width) to show *why* the
compositional aggregation pipeline matters.  The generators below produce
families of Arcade models for those sweeps.
"""

from __future__ import annotations

from ..arcade import (
    ArcadeModel,
    BasicComponent,
    RepairStrategy,
    RepairUnit,
    down,
    k_of_n,
)
from ..arcade.expressions import And, Expression, Or
from ..distributions import Exponential


def redundant_array_model(
    num_components: int,
    failures_to_break: int,
    *,
    failure_rate: float = 1e-3,
    repair_rate: float = 1.0,
    strategy: RepairStrategy = RepairStrategy.FCFS,
    shared_repair: bool = True,
    priorities: list[int] | None = None,
    name: str = "redundant_array",
    component_prefix: str | None = None,
) -> ArcadeModel:
    """A ``k``-out-of-``n``-failed array of identical repairable components.

    The system fails when at least ``failures_to_break`` of the
    ``num_components`` components are down simultaneously.  Repair is either
    a single shared unit with the given strategy or one dedicated unit per
    component.  ``component_prefix`` (default: the model name) keeps component
    names unique when several arrays are combined in a modular evaluation.
    """
    prefix = component_prefix if component_prefix is not None else name
    model = ArcadeModel(name=f"{name}_{failures_to_break}_of_{num_components}")
    names = []
    for index in range(num_components):
        component = f"{prefix}_unit_{index + 1}"
        names.append(component)
        model.add_component(
            BasicComponent(
                component,
                time_to_failures=Exponential(failure_rate),
                time_to_repairs=Exponential(repair_rate),
            )
        )
    if shared_repair:
        model.add_repair_unit(
            RepairUnit("shared_rep", names, strategy, priorities=priorities)
        )
    else:
        for component in names:
            model.add_repair_unit(
                RepairUnit(f"{component}_rep", [component], RepairStrategy.DEDICATED)
            )
    model.set_system_down(k_of_n(failures_to_break, [down(component) for component in names]))
    return model


def series_of_parallel_model(
    num_stages: int,
    redundancy: int,
    *,
    failure_rate: float = 1e-3,
    repair_rate: float = 0.5,
    name: str = "series_of_parallel",
) -> ArcadeModel:
    """A series system of ``num_stages`` stages, each ``redundancy``-way parallel.

    Stage ``i`` fails when all of its replicas are down; the system fails as
    soon as any stage fails.  Each stage has its own FCFS repair unit.  The
    family scales both the number of building blocks and the depth of the
    fault tree, which makes it a good stress test for the composer.
    """
    model = ArcadeModel(name=f"{name}_{num_stages}x{redundancy}")
    stage_expressions: list[Expression] = []
    for stage in range(num_stages):
        replicas = []
        for replica in range(redundancy):
            component = f"s{stage + 1}_r{replica + 1}"
            replicas.append(component)
            model.add_component(
                BasicComponent(
                    component,
                    time_to_failures=Exponential(failure_rate),
                    time_to_repairs=Exponential(repair_rate),
                )
            )
        model.add_repair_unit(
            RepairUnit(f"stage_{stage + 1}_rep", replicas, RepairStrategy.FCFS)
        )
        stage_expressions.append(And([down(component) for component in replicas]))
    model.set_system_down(Or(stage_expressions))
    return model


def series_of_parallel_groups(num_stages: int, redundancy: int) -> list[list[str]]:
    """Subsystem decomposition matching :func:`series_of_parallel_model`."""
    groups = []
    for stage in range(num_stages):
        group = [f"s{stage + 1}_r{replica + 1}" for replica in range(redundancy)]
        group.append(f"stage_{stage + 1}_rep")
        groups.append(group)
    return groups


def fdep_chain_model(
    chain_length: int,
    *,
    failure_rate: float = 1e-3,
    repair_rate: float = 1.0,
    name: str = "fdep_chain",
) -> ArcadeModel:
    """A chain of destructive functional dependencies (Fig. 3 exercised at scale).

    Component ``i`` is destroyed whenever component ``i-1`` fails; the first
    component only fails inherently.  The system is down when the last
    component of the chain is down.
    """
    model = ArcadeModel(name=f"{name}_{chain_length}")
    previous: str | None = None
    for index in range(chain_length):
        component = f"link_{index + 1}"
        model.add_component(
            BasicComponent(
                component,
                time_to_failures=Exponential(failure_rate),
                time_to_repairs=Exponential(repair_rate),
                time_to_repair_df=Exponential(repair_rate),
                destructive_fdep=down(previous) if previous is not None else None,
            )
        )
        model.add_repair_unit(
            RepairUnit(f"link_{index + 1}_rep", [component], RepairStrategy.DEDICATED)
        )
        previous = component
    model.set_system_down(down(f"link_{chain_length}"))
    return model


__all__ = [
    "fdep_chain_model",
    "redundant_array_model",
    "series_of_parallel_groups",
    "series_of_parallel_model",
]
