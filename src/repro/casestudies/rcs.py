"""The Reactor Cooling System (RCS) case study (Section 5.2).

The cooling system consists of two parallel pump lines, a heat exchanger
with its accompanying filter and valves, and a bypass with two motor-driven
valves.  The pumps share the load: when one pump fails the other switches to
a degraded operational mode with twice the failure rate (Erlang-2 times in
both modes).  The two pumps share one FCFS repair unit; every other
component has a dedicated repair unit.

The system is down when no pump line is operational, or when both the heat
exchanging unit and the bypass are down.  A pump line is down when its pump,
its filter or one of its control valves (stuck-closed only) is down; the
heat exchanging unit is down when the heat exchanger, its filter or one of
its valves fails (either mode); the bypass is down when one of its
motor-driven valves is stuck-closed.

Component counts per line/unit are not fully enumerated in the paper (nor in
its sources [7, 22]); the configuration below — two control valves per pump
line, one filter and two valves for the heat exchanging unit, two
motor-driven valves for the bypass — is the documented substitution (see
DESIGN.md).  Rates follow Section 5.2.1:

* pumps: Erlang-2 failures with phase rate ``5.44e-6`` (doubled when
  degraded), Erlang-2 repairs with phase rate ``0.1``;
* valves: two equally likely failure modes (stuck-open / stuck-closed) with
  a total failure rate of ``8.4e-8``; repairs ``exp(0.1)`` per mode;
* filters: failures ``exp(2.19e-6)``, repairs ``exp(0.1)``;
* heat exchanger: failures ``exp(1.14e-6)``, repairs ``exp(0.1)``.

Following the paper, the analysis uses modularization: the pump subsystem
and the heat-exchanger subsystem share no components, so their CTMCs are
generated and solved separately and the results are combined through the
system-level fault tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import ArcadeEvaluator, ModularEvaluator
from ..arcade import (
    ArcadeModel,
    BasicComponent,
    RepairStrategy,
    RepairUnit,
    down,
)
from ..arcade.expressions import And, Expression, Literal, Or
from ..arcade.operational_modes import degradation_group
from ..arcade.semantics import TranslatedModel
from ..composer import CompositionOrder, hierarchical_order
from ..distributions import Erlang, Exponential
from .orders import ORDER_CHOICES, validate_order_choice

#: Phase rate of the Erlang-2 pump failure distribution (per hour).
PUMP_PHASE_RATE = 5.44e-6
#: Phase rate of the Erlang-2 pump repair distribution (per hour).
PUMP_REPAIR_PHASE_RATE = 0.1
#: Total failure rate of a valve (both failure modes together, per hour).
VALVE_FAILURE_RATE = 8.4e-8
#: Failure rate of a filter (per hour).
FILTER_FAILURE_RATE = 2.19e-6
#: Failure rate of the heat exchanger (per hour).
HEAT_EXCHANGER_FAILURE_RATE = 1.14e-6
#: Repair rate of valves, filters and the heat exchanger (per hour).
COMPONENT_REPAIR_RATE = 0.1
#: Mission time used in Section 5.2.2 (hours).
MISSION_TIME_HOURS = 50.0

#: Failure-mode tag of a stuck-open valve.
STUCK_OPEN = "m1"
#: Failure-mode tag of a stuck-closed valve.
STUCK_CLOSED = "m2"


@dataclass(frozen=True)
class RCSParameters:
    """Configuration of the reactor cooling system."""

    valves_per_pump_line: int = 2
    valves_in_heat_exchange_unit: int = 2
    motor_driven_valves: int = 2
    pump_phase_rate: float = PUMP_PHASE_RATE
    degraded_rate_factor: float = 2.0
    valve_failure_rate: float = VALVE_FAILURE_RATE
    filter_failure_rate: float = FILTER_FAILURE_RATE
    heat_exchanger_failure_rate: float = HEAT_EXCHANGER_FAILURE_RATE
    repair_rate: float = COMPONENT_REPAIR_RATE


# --------------------------------------------------------------------------- #
# component factories
# --------------------------------------------------------------------------- #
def _valve(name: str, parameters: RCSParameters) -> BasicComponent:
    """A valve with two equally likely failure modes (Section 5.2.1, item 2)."""
    return BasicComponent(
        name,
        time_to_failures=Exponential(parameters.valve_failure_rate),
        failure_mode_probabilities=(0.5, 0.5),
        time_to_repairs=[
            Exponential(parameters.repair_rate),
            Exponential(parameters.repair_rate),
        ],
    )


def _filter(name: str, parameters: RCSParameters) -> BasicComponent:
    """A filter that is either free ("up") or blocked ("down")."""
    return BasicComponent(
        name,
        time_to_failures=Exponential(parameters.filter_failure_rate),
        time_to_repairs=Exponential(parameters.repair_rate),
    )


def _pump(name: str, other_pump: str, parameters: RCSParameters) -> BasicComponent:
    """A load-sharing pump with normal/degraded modes (Section 5.2.1, item 1)."""
    return BasicComponent(
        name,
        operational_modes=[degradation_group(down(other_pump))],
        time_to_failures=[
            Erlang(2, parameters.pump_phase_rate),
            Erlang(2, parameters.pump_phase_rate * parameters.degraded_rate_factor),
        ],
        time_to_repairs=Erlang(2, PUMP_REPAIR_PHASE_RATE),
    )


def _add_dedicated_repair(model: ArcadeModel, component: str) -> None:
    model.add_repair_unit(
        RepairUnit(f"{component}_rep", [component], RepairStrategy.DEDICATED)
    )


# --------------------------------------------------------------------------- #
# subsystem builders
# --------------------------------------------------------------------------- #
def pump_line_components(line: int, parameters: RCSParameters) -> list[str]:
    """Names of the non-pump components of pump line ``line`` (1 or 2)."""
    names = [f"FP{line}"]
    for index in range(parameters.valves_per_pump_line):
        prefix = "VIP" if index == 0 else f"VOP{index}" if index > 1 else "VOP"
        names.append(f"{prefix}{line}")
    return names


def pump_line_down(line: int, parameters: RCSParameters) -> Expression:
    """Failure condition of one pump line (stuck-closed valves only)."""
    terms: list[Expression] = [down(f"P{line}"), down(f"FP{line}")]
    for name in pump_line_components(line, parameters)[1:]:
        terms.append(down(name, STUCK_CLOSED))
    return Or(terms)


def heat_exchange_unit_down(parameters: RCSParameters) -> Expression:
    """Failure condition of the heat exchanging unit (any valve failure counts)."""
    terms: list[Expression] = [down("HX"), down("FHX")]
    for index in range(parameters.valves_in_heat_exchange_unit):
        terms.append(down(f"VHX{index + 1}"))
    return Or(terms)


def bypass_down(parameters: RCSParameters) -> Expression:
    """Failure condition of the bypass (stuck-closed motor-driven valves)."""
    return Or(
        [
            down(f"MV{index + 1}", STUCK_CLOSED)
            for index in range(parameters.motor_driven_valves)
        ]
    )


def build_pump_subsystem(parameters: RCSParameters | None = None) -> ArcadeModel:
    """The pump subsystem: two load-sharing pump lines with a shared pump RU."""
    p = parameters or RCSParameters()
    model = ArcadeModel(name="rcs_pump_subsystem")
    model.add_component(_pump("P1", "P2", p))
    model.add_component(_pump("P2", "P1", p))
    model.add_repair_unit(RepairUnit("P_rep", ["P1", "P2"], RepairStrategy.FCFS))
    for line in (1, 2):
        for name in pump_line_components(line, p):
            if name.startswith("FP"):
                model.add_component(_filter(name, p))
            else:
                model.add_component(_valve(name, p))
            _add_dedicated_repair(model, name)
    model.set_system_down(And([pump_line_down(1, p), pump_line_down(2, p)]))
    return model


def build_heat_exchange_subsystem(parameters: RCSParameters | None = None) -> ArcadeModel:
    """The heat-exchanger-plus-bypass subsystem."""
    p = parameters or RCSParameters()
    model = ArcadeModel(name="rcs_heat_exchange_subsystem")
    model.add_component(
        BasicComponent(
            "HX",
            time_to_failures=Exponential(p.heat_exchanger_failure_rate),
            time_to_repairs=Exponential(p.repair_rate),
        )
    )
    _add_dedicated_repair(model, "HX")
    model.add_component(_filter("FHX", p))
    _add_dedicated_repair(model, "FHX")
    for index in range(p.valves_in_heat_exchange_unit):
        name = f"VHX{index + 1}"
        model.add_component(_valve(name, p))
        _add_dedicated_repair(model, name)
    for index in range(p.motor_driven_valves):
        name = f"MV{index + 1}"
        model.add_component(_valve(name, p))
        _add_dedicated_repair(model, name)
    model.set_system_down(And([heat_exchange_unit_down(p), bypass_down(p)]))
    return model


def build_rcs_model(parameters: RCSParameters | None = None) -> ArcadeModel:
    """The full reactor cooling system as a single Arcade model."""
    p = parameters or RCSParameters()
    model = ArcadeModel(name="reactor_cooling_system")
    pump_part = build_pump_subsystem(p)
    heat_part = build_heat_exchange_subsystem(p)
    for source in (pump_part, heat_part):
        for component in source.components.values():
            model.add_component(component)
        for unit in source.repair_units.values():
            model.add_repair_unit(unit)
    model.set_system_down(
        Or(
            [
                And([pump_line_down(1, p), pump_line_down(2, p)]),
                And([heat_exchange_unit_down(p), bypass_down(p)]),
            ]
        )
    )
    return model


# --------------------------------------------------------------------------- #
# composition orders and evaluators
# --------------------------------------------------------------------------- #
def pump_subsystem_groups(parameters: RCSParameters | None = None) -> list[list[str]]:
    """Subsystem decomposition of the pump subsystem for the composer."""
    p = parameters or RCSParameters()
    groups = [["P1", "P2", "P_rep"]]
    for line in (1, 2):
        group = []
        for name in pump_line_components(line, p):
            group.extend([name, f"{name}_rep"])
        groups.append(group)
    return groups


def heat_exchange_subsystem_groups(
    parameters: RCSParameters | None = None,
) -> list[list[str]]:
    """Subsystem decomposition of the heat-exchanger subsystem for the composer."""
    p = parameters or RCSParameters()
    unit_group = ["HX", "HX_rep", "FHX", "FHX_rep"]
    for index in range(p.valves_in_heat_exchange_unit):
        name = f"VHX{index + 1}"
        unit_group.extend([name, f"{name}_rep"])
    bypass_group = []
    for index in range(p.motor_driven_valves):
        name = f"MV{index + 1}"
        bypass_group.extend([name, f"{name}_rep"])
    return [unit_group, bypass_group]


def subsystem_order(
    translated: TranslatedModel, groups: list[list[str]]
) -> CompositionOrder:
    """Composition order for a subsystem, dropping absent blocks (no-repair runs)."""
    present = set(translated.blocks)
    filtered = [[name for name in group if name in present] for group in groups]
    return hierarchical_order(translated, [group for group in filtered if group])


def build_pump_evaluator(
    parameters: RCSParameters | None = None, *, reduction: str = "strong"
) -> ArcadeEvaluator:
    """Evaluator for the pump subsystem through the compositional pipeline."""
    model = build_pump_subsystem(parameters)
    evaluator = ArcadeEvaluator(model, reduction=reduction)
    evaluator.order = subsystem_order(
        evaluator.translated, pump_subsystem_groups(parameters)
    )
    return evaluator


def build_heat_exchange_evaluator(
    parameters: RCSParameters | None = None, *, reduction: str = "strong"
) -> ArcadeEvaluator:
    """Evaluator for the heat-exchanger subsystem through the compositional pipeline."""
    model = build_heat_exchange_subsystem(parameters)
    evaluator = ArcadeEvaluator(model, reduction=reduction)
    evaluator.order = subsystem_order(
        evaluator.translated, heat_exchange_subsystem_groups(parameters)
    )
    return evaluator


def build_rcs_modular_evaluator(
    parameters: RCSParameters | None = None,
    *,
    reduction: str = "strong",
    order: str = "hierarchical",
    cache="off",
    jobs: int = 1,
    retry=None,
    state_budget: int | None = None,
) -> ModularEvaluator:
    """Modular evaluator of the full RCS (the paper's Section 5.2.2 analysis).

    ``order`` selects the composition-order policy applied to both subsystem
    evaluators: ``"hierarchical"`` (the paper's decomposition, default),
    ``"greedy"`` (the composer's signal-closing heuristic) or ``"auto"``
    (the planner of :mod:`repro.planner`).  ``cache`` (``"on"``/``"off"``
    or a shared :class:`~repro.composer.QuotientCache`) enables the
    isomorphism-aware quotient cache, shared across both subsystem
    evaluators — the two pump lines are isomorphic up to signal renaming.
    ``jobs`` > 1 lets each subsystem composer aggregate its independent
    subtrees in parallel worker processes.
    """
    validate_order_choice(order)
    p = parameters or RCSParameters()
    subsystems = {
        "pumps": build_pump_subsystem(p),
        "heat_exchange": build_heat_exchange_subsystem(p),
    }
    orders: dict[str, CompositionOrder] = {}
    system_down = Or([Literal("pumps", None), Literal("heat_exchange", None)])
    evaluator = ModularEvaluator(
        subsystems, system_down, orders=orders, reduction=reduction, cache=cache,
        jobs=jobs, retry=retry, state_budget=state_budget,
    )
    if order == "hierarchical":
        evaluator.evaluators["pumps"].order = subsystem_order(
            evaluator.evaluators["pumps"].translated, pump_subsystem_groups(p)
        )
        evaluator.evaluators["heat_exchange"].order = subsystem_order(
            evaluator.evaluators["heat_exchange"].translated,
            heat_exchange_subsystem_groups(p),
        )
    elif order == "auto":
        evaluator.evaluators["pumps"].order = "auto"
        evaluator.evaluators["heat_exchange"].order = "auto"
    return evaluator


def rcs_parameters_from_values(values) -> RCSParameters:
    """Resolve a sweep axis-value assignment to :class:`RCSParameters`."""
    defaults = RCSParameters()
    return RCSParameters(
        pump_phase_rate=float(values.get("pump_phase_rate", defaults.pump_phase_rate)),
        valve_failure_rate=float(
            values.get("valve_failure_rate", defaults.valve_failure_rate)
        ),
        filter_failure_rate=float(
            values.get("filter_failure_rate", defaults.filter_failure_rate)
        ),
        heat_exchanger_failure_rate=float(
            values.get(
                "heat_exchanger_failure_rate", defaults.heat_exchanger_failure_rate
            )
        ),
        repair_rate=float(values.get("repair_rate", defaults.repair_rate)),
    )


def rcs_sweep_factory():
    """The flat RCS as a sweepable model family (:mod:`repro.sweep`).

    All five rates are sweep axes (and sensitivity-eligible).  The
    importance components are the ones the fault tree references with plain
    ``.down`` literals — mode-specific valve literals (stuck-closed) cannot
    be conditioned component-wise and are deliberately left out.
    """
    from ..sweep import SweepFactory

    defaults = RCSParameters()

    def build(values) -> ArcadeModel:
        return build_rcs_model(rcs_parameters_from_values(values))

    def order(translated: TranslatedModel, values) -> CompositionOrder:
        p = rcs_parameters_from_values(values)
        groups = pump_subsystem_groups(p) + heat_exchange_subsystem_groups(p)
        return subsystem_order(translated, groups)

    return SweepFactory(
        name="rcs",
        build=build,
        base={
            "pump_phase_rate": defaults.pump_phase_rate,
            "valve_failure_rate": defaults.valve_failure_rate,
            "filter_failure_rate": defaults.filter_failure_rate,
            "heat_exchanger_failure_rate": defaults.heat_exchanger_failure_rate,
            "repair_rate": defaults.repair_rate,
        },
        order=order,
        rate_axes=(
            "pump_phase_rate",
            "filter_failure_rate",
            "heat_exchanger_failure_rate",
            "repair_rate",
        ),
        importance_components=("P1", "HX", "FHX"),
    )


def main(argv: list[str] | None = None) -> None:
    """CLI: run the modular RCS analysis under a chosen reduction mode.

    ``python -m repro.casestudies.rcs --reduction branching`` reproduces the
    Section 5.2.2 numbers with the paper's actual CADP equivalence.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Reactor Cooling System case study (Section 5.2)"
    )
    parser.add_argument(
        "--reduction",
        choices=("strong", "weak", "branching"),
        default="strong",
        help="bisimulation variant applied between composition steps",
    )
    parser.add_argument(
        "--order",
        choices=ORDER_CHOICES,
        default="hierarchical",
        help="composition-order policy: the paper's hierarchical decomposition, "
        "the greedy signal-closing heuristic, or the cost-model-guided planner",
    )
    parser.add_argument(
        "--cache",
        choices=("on", "off"),
        default="on",
        help="isomorphism-aware quotient cache, shared across both subsystem "
        "evaluators (the pump lines are isomorphic up to signal renaming)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel subtree aggregation (1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=("compose", "simulate"),
        default="compose",
        help="compose: the paper's compositional-aggregation pipeline; "
        "simulate: RESTART rare-event simulation on the flat RCS model",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=256,
        help="simulation roots per batch (simulate backend only)",
    )
    parser.add_argument(
        "--rel-error",
        type=float,
        default=None,
        help="target relative CI half-width; keeps adding replication "
        "batches until reached (simulate backend only)",
    )
    parser.add_argument(
        "--sim-horizon",
        type=float,
        default=10_000.0,
        help="time horizon of each simulated trajectory, hours",
    )
    parser.add_argument(
        "--sim-seed",
        type=int,
        default=0,
        help="seed of the simulation RNG stream",
    )
    from ..telemetry import (
        add_observability_arguments,
        configure_logging,
        get_logger,
        telemetry_session,
    )
    from .sweep_cli import add_resilience_arguments, add_sweep_arguments, run_sweep_cli

    add_observability_arguments(parser)
    add_sweep_arguments(parser)
    add_resilience_arguments(parser)
    args = parser.parse_args(argv)
    configure_logging(args)
    log = get_logger("rcs")

    with telemetry_session("rcs", args, seeds={"sim_seed": args.sim_seed}):
        _run(args, log, run_sweep_cli)


def _run(args, log, run_sweep_cli) -> None:
    import time

    from ..ctmc import point_availability

    if args.sweep:
        run_sweep_cli(
            rcs_sweep_factory(),
            args,
            default_grid={
                "filter_failure_rate": [
                    FILTER_FAILURE_RATE / 2.0,
                    FILTER_FAILURE_RATE,
                    FILTER_FAILURE_RATE * 2.0,
                ],
                "repair_rate": [0.05, 0.1, 0.2],
            },
        )
        return

    if args.backend == "simulate":
        started = time.perf_counter()
        evaluator = ArcadeEvaluator(
            build_rcs_model(),
            backend="simulate",
            sim_seed=args.sim_seed,
            sim_horizon=args.sim_horizon,
            sim_replications=args.replications,
            sim_rel_error=args.rel_error,
        )
        unavailability = evaluator.unavailability()
        interval = evaluator.simulation_interval
        unreliability_50h = evaluator.unreliability(MISSION_TIME_HOURS)
        elapsed = time.perf_counter() - started
        log.info("RCS (flat model), backend=simulate (RESTART)")
        log.info("  long-run unavailability %.3e", unavailability)
        if interval is not None:
            log.info("  unavailability CI       %s", interval.describe())
        log.info("  unreliability (50 h)    %.3e", unreliability_50h)
        log.info("  wall-clock %.1fs", elapsed)
        return

    from ..composer import resolve_cache
    from .sweep_cli import load_cache_file, retry_from_args, save_cache_file

    started = time.perf_counter()
    cache = resolve_cache(args.cache)
    load_cache_file(cache, args)
    modular = build_rcs_modular_evaluator(
        reduction=args.reduction,
        order=args.order,
        cache=cache if cache is not None else "off",
        jobs=args.jobs,
        retry=retry_from_args(args),
        state_budget=args.state_budget,
    )
    pumps = modular.evaluators["pumps"]
    heat = modular.evaluators["heat_exchange"]
    unavailability_50h = 1.0 - (
        point_availability(pumps.ctmc, MISSION_TIME_HOURS)
        * point_availability(heat.ctmc, MISSION_TIME_HOURS)
    )
    unreliability_50h = modular.unreliability(MISSION_TIME_HOURS)
    elapsed = time.perf_counter() - started
    jobs_note = f", jobs={args.jobs}" if args.jobs > 1 else ""
    log.info(
        "RCS (modular), reduction=%s, order=%s%s", args.reduction, args.order, jobs_note
    )
    for name in ("pumps", "heat_exchange"):
        report = modular.evaluators[name].composed.plan_report
        if report is not None:
            log.info("  %s: %s", name, report.summary())
    if modular.cache is not None:
        summary = modular.cache.summary()
        log.info(
            "  cache: %s hits / %s misses (hit rate %.0f%%), saved %.2fs",
            summary["hits"],
            summary["misses"],
            100.0 * summary["hit_rate"],
            summary["saved_seconds"],
        )
    log.info(
        "  pump subsystem CTMC: %s states / %s transitions, unavailability %.6e",
        pumps.ctmc.num_states,
        pumps.ctmc.num_transitions,
        pumps.unavailability(),
    )
    log.info(
        "  heat-exchange CTMC:  %s states / %s transitions, unavailability %.6e",
        heat.ctmc.num_states,
        heat.ctmc.num_transitions,
        heat.unavailability(),
    )
    log.info("  unavailability (50 h) %.6e", unavailability_50h)
    log.info("  unreliability  (50 h) %.6e", unreliability_50h)
    log.info("  wall-clock %.1fs", elapsed)
    save_cache_file(cache, args)


if __name__ == "__main__":
    main()


__all__ = [
    "COMPONENT_REPAIR_RATE",
    "FILTER_FAILURE_RATE",
    "HEAT_EXCHANGER_FAILURE_RATE",
    "MISSION_TIME_HOURS",
    "ORDER_CHOICES",
    "PUMP_PHASE_RATE",
    "PUMP_REPAIR_PHASE_RATE",
    "RCSParameters",
    "STUCK_CLOSED",
    "STUCK_OPEN",
    "VALVE_FAILURE_RATE",
    "build_heat_exchange_evaluator",
    "build_heat_exchange_subsystem",
    "build_pump_evaluator",
    "build_pump_subsystem",
    "build_rcs_model",
    "build_rcs_modular_evaluator",
    "bypass_down",
    "heat_exchange_unit_down",
    "pump_line_components",
    "pump_line_down",
    "pump_subsystem_groups",
    "rcs_parameters_from_values",
    "rcs_sweep_factory",
    "subsystem_order",
]
