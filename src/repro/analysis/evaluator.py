"""End-to-end evaluation of Arcade models.

:class:`ArcadeEvaluator` is the main user-facing entry point of the library:
it runs the full pipeline of Section 4 of the paper (translate every building
block to its I/O-IMC, compose and aggregate them, extract the labelled CTMC)
and exposes the dependability measures of the case studies:

* steady-state availability / unavailability,
* reliability over a mission time — following the paper's definition for the
  distributed database system, the default assumes that *no component is
  ever repaired* (the repair units are removed for this analysis); the
  repair-aware first-passage variant is available as well,
* unreliability (the complement), and mean time to failure.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..arcade.model import ArcadeModel
from ..arcade.semantics import TranslatedModel, translate_model
from ..composer import (
    ComposedSystem,
    CompositionOrder,
    QuotientCache,
    compose_model,
    resolve_cache,
)
from ..ctmc import (
    CTMC,
    mean_time_to_failure,
    steady_state_availability,
    steady_state_unavailability,
    unreliability,
)
from ..errors import ModelError
from ..simulation import (
    ConfidenceInterval,
    RestartSimulator,
    VectorisedSimulator,
    batch_means,
)
from ..telemetry.trace import Telemetry, current_telemetry


@dataclass(frozen=True)
class EvaluationReport:
    """The headline numbers for one model (rows of the paper's Table 1)."""

    model_name: str
    availability: float
    unavailability: float
    reliability: float | None
    unreliability: float | None
    mission_time: float | None
    ctmc_states: int
    ctmc_transitions: int
    largest_intermediate_states: int
    largest_intermediate_transitions: int


class ArcadeEvaluator:
    """Evaluate an :class:`ArcadeModel` through the compositional pipeline.

    ``reduction`` selects the bisimulation variant applied between
    composition steps — ``"strong"`` (default), ``"branching"`` (the
    equivalence CADP's minimisation uses in the paper's tool chain),
    ``"weak"`` or ``"none"`` — and is forwarded to
    :class:`repro.composer.Composer` together with the reduction-policy
    knobs (``reduce_policy``, ``reduce_every_n``,
    ``adaptive_reduction_states``).  ``order`` accepts an explicit nested
    order, ``None`` for the greedy heuristic, or ``"auto"`` for the
    cost-model-guided planner (``plan_budget`` / ``plan_seed`` /
    ``plan_parameters`` tune its search; see :mod:`repro.planner`).
    ``cache`` enables the isomorphism-aware quotient cache
    (:mod:`repro.composer.cache`): ``"on"`` resolves to a single
    :class:`~repro.composer.QuotientCache` instance shared between the
    repairable and the no-repair pipelines, so replicated subtrees are
    composed once per evaluator, not once per measure.  ``telemetry``
    accepts a :class:`~repro.telemetry.Telemetry` session; the pipeline
    stages run inside its activation scope so composition, lumping and
    simulation spans land in its sink — purely observational, the computed
    measures are bit-identical with telemetry on, off or absent.
    """

    def __init__(
        self,
        model: ArcadeModel,
        *,
        order: CompositionOrder | str | None = None,
        reduction: str = "strong",
        max_gate_width: int = 2,
        lump_final_ctmc: bool = True,
        cache: QuotientCache | str | None = None,
        reduce_policy: str | None = None,
        reduce_every_n: int = 1,
        adaptive_reduction_states: int | None = None,
        plan_budget: int | None = None,
        plan_seed: int = 0,
        plan_parameters=None,
        jobs: int = 1,
        backend: str = "compose",
        auto_state_limit: float = 5e7,
        sim_seed: int = 0,
        sim_horizon: float = 10_000.0,
        sim_replications: int = 4096,
        sim_rel_error: float | None = None,
        sim_splitting: int = 4,
        sim_burn_in: float | None = None,
        sim_confidence: float = 0.99,
        telemetry: "Telemetry | None" = None,
        retry=None,
        state_budget: int | None = None,
    ) -> None:
        if backend not in ("compose", "simulate", "auto"):
            raise ModelError(
                f"unknown backend {backend!r} (use 'compose', 'simulate' or 'auto')"
            )
        self.backend = backend
        #: Flat state-space bound above which ``backend="auto"`` falls back
        #: to simulation (the product of the block state counts bounds what
        #: any composition order could be asked to explore).
        self.auto_state_limit = auto_state_limit
        self._resolved_backend: str | None = None if backend == "auto" else backend
        #: Simulation-backend knobs (ignored under ``backend="compose"``).
        self.sim_seed = sim_seed
        self.sim_horizon = sim_horizon
        self.sim_replications = sim_replications
        self.sim_rel_error = sim_rel_error
        self.sim_splitting = sim_splitting
        self.sim_burn_in = sim_burn_in if sim_burn_in is not None else sim_horizon / 20.0
        self.sim_confidence = sim_confidence
        #: Unavailability CI of the last simulation-backend estimate.
        self.simulation_interval: ConfidenceInterval | None = None
        self._simulated_unavailability: float | None = None
        self.model = model
        self.order = order
        self.reduction = reduction
        self.max_gate_width = max_gate_width
        self.lump_final_ctmc = lump_final_ctmc
        #: The resolved quotient cache, shared by every pipeline this
        #: evaluator runs (``None`` when caching is off).
        self.cache: QuotientCache | None = resolve_cache(cache)
        self.reduce_policy = reduce_policy
        self.reduce_every_n = reduce_every_n
        self.adaptive_reduction_states = adaptive_reduction_states
        #: Search budget / RNG seed forwarded to the planner when
        #: ``order="auto"`` (``None`` budget = the planner's default).
        self.plan_budget = plan_budget
        self.plan_seed = plan_seed
        self.plan_parameters = plan_parameters
        #: Worker processes for the composer's parallel subtree aggregation
        #: (``1`` = serial; forwarded as ``Composer(jobs=...)``).
        self.jobs = jobs
        #: Resilience bounds, forwarded to the composer: the worker-pool
        #: :class:`~repro.resilience.RetryPolicy` (``None`` = defaults) and
        #: the pre-reduction state ceiling per composition step.
        self.retry = retry
        self.state_budget = state_budget
        #: Explicit telemetry session: the pipeline stages run inside its
        #: activation scope, so composer/lumping/simulation spans land in it
        #: even when the caller did not activate the session itself.  With
        #: ``None`` the evaluator is observational-transparent: the ambient
        #: session (if any) is used, and with none active all
        #: instrumentation sites are no-ops.
        self.telemetry = telemetry
        self._translated: TranslatedModel | None = None
        self._composed: ComposedSystem | None = None
        self._composed_no_repair: ComposedSystem | None = None

    def _telemetry_scope(self):
        """Activation scope of the explicit session (no-op when ambient)."""
        if self.telemetry is not None and current_telemetry() is not self.telemetry:
            return self.telemetry.activate()
        return nullcontext()

    # ------------------------------------------------------------------ #
    # pipeline stages (lazily computed and cached)
    # ------------------------------------------------------------------ #
    @property
    def translated(self) -> TranslatedModel:
        """The building-block I/O-IMCs of the model."""
        if self._translated is None:
            self._translated = translate_model(
                self.model, max_gate_width=self.max_gate_width
            )
        return self._translated

    @property
    def resolved_backend(self) -> str:
        """The backend actually used: ``"compose"`` or ``"simulate"``.

        ``backend="auto"`` picks per model: compositional aggregation while
        the flat state-space bound (the product of the translated block
        state counts — an upper bound on what any composition order could
        be asked to explore) stays within ``auto_state_limit``, simulation
        beyond it.  The sweep engine uses this to route each parameter
        point to the cheaper backend.
        """
        if self._resolved_backend is None:
            bound = 1.0
            for block in self.translated.blocks.values():
                bound *= float(block.num_states)
                if bound > self.auto_state_limit:
                    break
            self._resolved_backend = (
                "simulate" if bound > self.auto_state_limit else "compose"
            )
        return self._resolved_backend

    @property
    def composed(self) -> ComposedSystem:
        """The composed system (I/O-IMC, CTMC and composition statistics)."""
        if self._composed is None:
            with self._telemetry_scope():
                self._composed = compose_model(
                    self.translated,
                    order=self.order,
                    reduction=self.reduction,
                    lump_final_ctmc=self.lump_final_ctmc,
                    cache=self.cache,
                    reduce_policy=self.reduce_policy,
                    reduce_every_n=self.reduce_every_n,
                    adaptive_reduction_states=self.adaptive_reduction_states,
                    plan_budget=self.plan_budget,
                    plan_seed=self.plan_seed,
                    plan_parameters=self.plan_parameters,
                    jobs=self.jobs,
                    retry=self.retry,
                    state_budget=self.state_budget,
                )
        return self._composed

    @property
    def ctmc(self) -> CTMC:
        """The labelled CTMC of the full (repairable) model."""
        if self.resolved_backend == "simulate":
            raise ModelError(
                "the simulate backend estimates measures statistically and "
                "builds no CTMC; use backend='compose' for state-space access"
            )
        return self.composed.ctmc

    @property
    def composed_without_repair(self) -> ComposedSystem:
        """The composed system of the model with all repair units removed."""
        if self._composed_no_repair is None:
            stripped = self.model.without_repair()
            translated = translate_model(stripped, max_gate_width=self.max_gate_width)
            order = self.order
            if order is not None and not isinstance(order, str):
                # Explicit orders lose the blocks that no longer exist;
                # "auto" passes through and re-plans on the stripped model.
                order = _filter_order(order, set(translated.blocks))
            with self._telemetry_scope():
                self._composed_no_repair = compose_model(
                    translated,
                    order=order,
                    reduction=self.reduction,
                    lump_final_ctmc=self.lump_final_ctmc,
                    cache=self.cache,
                    reduce_policy=self.reduce_policy,
                    reduce_every_n=self.reduce_every_n,
                    adaptive_reduction_states=self.adaptive_reduction_states,
                    plan_budget=self.plan_budget,
                    plan_seed=self.plan_seed,
                    plan_parameters=self.plan_parameters,
                    jobs=self.jobs,
                    retry=self.retry,
                    state_budget=self.state_budget,
                )
        return self._composed_no_repair

    # ------------------------------------------------------------------ #
    # simulation backend
    # ------------------------------------------------------------------ #
    def _simulate_unavailability(self) -> float:
        """Long-run unavailability via RESTART importance splitting.

        The time-average unavailability over ``[burn_in, horizon]``
        approaches the steady-state value the compositional backend computes
        once the burn-in passes the model's mixing time; the confidence
        interval of the estimate is kept in :attr:`simulation_interval`.
        RESTART with no splitting thresholds (e.g. a single-component cut)
        degenerates to plain vectorised Monte Carlo.
        """
        if self._simulated_unavailability is None:
            with self._telemetry_scope():
                simulator = RestartSimulator(
                    self.model, seed=self.sim_seed, splitting=self.sim_splitting
                )
                if self.sim_rel_error is not None:
                    report = simulator.estimate_until(
                        self.sim_horizon,
                        rel_error=self.sim_rel_error,
                        burn_in=self.sim_burn_in,
                        confidence=self.sim_confidence,
                        batch_size=max(self.sim_replications, 2),
                    )
                    interval = report.interval
                else:
                    interval = simulator.run(
                        self.sim_horizon,
                        max(self.sim_replications, 2),
                        burn_in=self.sim_burn_in,
                        confidence=self.sim_confidence,
                    ).interval
            self.simulation_interval = interval
            self._simulated_unavailability = interval.mean
        return self._simulated_unavailability

    # ------------------------------------------------------------------ #
    # measures
    # ------------------------------------------------------------------ #
    def availability(self) -> float:
        """Steady-state availability of the repairable system."""
        if self.resolved_backend == "simulate":
            return 1.0 - self._simulate_unavailability()
        return steady_state_availability(self.ctmc)

    def unavailability(self) -> float:
        """Steady-state unavailability of the repairable system."""
        if self.resolved_backend == "simulate":
            return self._simulate_unavailability()
        return steady_state_unavailability(self.ctmc)

    def reliability(self, mission_time: float, *, assume_no_repair: bool = True) -> float:
        """Probability of no system failure within ``mission_time``.

        With ``assume_no_repair`` (the default, matching the paper's Table 1)
        the repair units are removed before the analysis; otherwise the
        first-passage probability on the repairable model is returned.
        """
        return 1.0 - self.unreliability(mission_time, assume_no_repair=assume_no_repair)

    def unreliability(self, mission_time: float, *, assume_no_repair: bool = True) -> float:
        """Probability of at least one system failure within ``mission_time``."""
        if self.resolved_backend == "simulate":
            with self._telemetry_scope():
                target = self.model.without_repair() if assume_no_repair else self.model
                simulator = VectorisedSimulator(target, seed=self.sim_seed)
                batch = simulator.run_batch(mission_time, max(self.sim_replications, 2))
            failed = (~np.isnan(batch.first_failure_time)).astype(float)
            self.simulation_interval = batch_means(
                failed, confidence=self.sim_confidence
            )
            return self.simulation_interval.mean
        if assume_no_repair:
            chain = self.composed_without_repair.ctmc
        else:
            chain = self.ctmc
        return unreliability(chain, mission_time)

    def mean_time_to_failure(self, *, assume_no_repair: bool = False) -> float:
        """Expected time until the first system failure."""
        chain = (
            self.composed_without_repair.ctmc if assume_no_repair else self.ctmc
        )
        return mean_time_to_failure(chain)

    def report(self, mission_time: float | None = None) -> EvaluationReport:
        """Produce the bundle of headline numbers for this model."""
        statistics = self.composed.statistics
        reliability = None
        unreliability_value = None
        if mission_time is not None:
            unreliability_value = self.unreliability(mission_time)
            reliability = 1.0 - unreliability_value
        return EvaluationReport(
            model_name=self.model.name,
            availability=self.availability(),
            unavailability=self.unavailability(),
            reliability=reliability,
            unreliability=unreliability_value,
            mission_time=mission_time,
            ctmc_states=self.ctmc.num_states,
            ctmc_transitions=self.ctmc.num_transitions,
            largest_intermediate_states=statistics.largest_intermediate_states,
            largest_intermediate_transitions=statistics.largest_intermediate_transitions,
        )


def _filter_order(order: CompositionOrder, keep: set[str]) -> CompositionOrder:
    """Drop blocks that no longer exist (e.g. repair units) from an order."""
    filtered: list = []
    for entry in order:
        if isinstance(entry, str):
            if entry in keep:
                filtered.append(entry)
        else:
            nested = _filter_order(entry, keep)
            if nested:
                filtered.append(nested)
    return filtered


__all__ = ["ArcadeEvaluator", "EvaluationReport"]
