"""Modular (divide-and-conquer) evaluation of independent subsystems.

Section 5.2.2 of the paper analyses the reactor cooling system with "the
technique of modularization [7]": the CTMCs of the pump subsystem and of the
heat-exchanger subsystem are generated and solved *separately*, and the
system-level measures are obtained by combining the subsystem measures
through the fault-tree structure.  This is exact whenever the subsystems
share no components, repair units or dependencies, because the subsystems
are then stochastically independent.

:class:`ModularEvaluator` implements that technique on top of
:class:`~repro.analysis.evaluator.ArcadeEvaluator`: each subsystem is an
independent Arcade model with its own ``SYSTEM DOWN`` criterion, and the
system failure condition is a boolean expression over subsystem failures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..arcade.expressions import And, Expression, KOutOfN, Literal, Or
from ..arcade.model import ArcadeModel
from ..composer import CompositionOrder
from ..errors import AnalysisError, ModelError
from .evaluator import ArcadeEvaluator


@dataclass(frozen=True)
class SubsystemResult:
    """Measures of one subsystem, as produced during a modular evaluation."""

    name: str
    unavailability: float
    unreliability: float | None
    ctmc_states: int
    ctmc_transitions: int
    largest_intermediate_states: int
    largest_intermediate_transitions: int


class ModularEvaluator:
    """Evaluate a system composed of stochastically independent subsystems."""

    def __init__(
        self,
        subsystems: dict[str, ArcadeModel],
        system_down: Expression,
        *,
        orders: dict[str, CompositionOrder] | None = None,
        reduction: str = "strong",
        cache=None,
        jobs: int = 1,
        retry=None,
        state_budget: int | None = None,
    ) -> None:
        if not subsystems:
            raise ModelError("a modular evaluation needs at least one subsystem")
        self.subsystems = dict(subsystems)
        self.system_down = system_down
        self.orders = dict(orders or {})
        self.reduction = reduction
        from ..composer import resolve_cache

        #: One quotient cache shared across every subsystem evaluator —
        #: replicated structures recur *between* subsystems as well (the RCS
        #: pump lines), so the sharing compounds (``None`` = caching off).
        self.cache = resolve_cache(cache)
        #: Worker processes forwarded to every subsystem evaluator's composer
        #: (``1`` = serial).
        self.jobs = jobs
        #: Resilience bounds forwarded to every subsystem evaluator (the
        #: worker retry policy and the per-step state-budget ceiling).
        self.retry = retry
        self.state_budget = state_budget
        self._check_independence()
        for literal in system_down.atoms():
            if literal.component not in self.subsystems:
                raise ModelError(
                    f"system failure expression references unknown subsystem "
                    f"{literal.component!r}"
                )
        self.evaluators = {
            name: ArcadeEvaluator(
                model,
                order=self.orders.get(name),
                reduction=reduction,
                cache=self.cache,
                jobs=jobs,
                retry=retry,
                state_budget=state_budget,
            )
            for name, model in self.subsystems.items()
        }

    def _check_independence(self) -> None:
        seen: dict[str, str] = {}
        for name, model in self.subsystems.items():
            for component in model.components:
                if component in seen:
                    raise ModelError(
                        f"component {component!r} appears in subsystems "
                        f"{seen[component]!r} and {name!r}; modular evaluation requires "
                        "disjoint (independent) subsystems"
                    )
                seen[component] = name

    # ------------------------------------------------------------------ #
    # measures
    # ------------------------------------------------------------------ #
    def unavailability(self) -> float:
        """Steady-state system unavailability."""
        probabilities = {
            name: evaluator.unavailability() for name, evaluator in self.evaluators.items()
        }
        return self._probability_of_expression(probabilities)

    def availability(self) -> float:
        """Steady-state system availability."""
        return 1.0 - self.unavailability()

    def unreliability(self, mission_time: float, *, assume_no_repair: bool = False) -> float:
        """Probability of system failure within ``mission_time``.

        Note that combining subsystem *first-passage* probabilities through
        the fault-tree structure is exact for coherent structure functions of
        independent subsystems, which covers every expression expressible in
        Arcade (no negations).
        """
        probabilities = {
            name: evaluator.unreliability(mission_time, assume_no_repair=assume_no_repair)
            for name, evaluator in self.evaluators.items()
        }
        return self._probability_of_expression(probabilities)

    def reliability(self, mission_time: float, *, assume_no_repair: bool = False) -> float:
        """Probability of no system failure within ``mission_time``."""
        return 1.0 - self.unreliability(mission_time, assume_no_repair=assume_no_repair)

    def subsystem_results(self, mission_time: float | None = None) -> list[SubsystemResult]:
        """Per-subsystem measures (the rows reported in Section 5.2.2)."""
        results = []
        for name, evaluator in self.evaluators.items():
            statistics = evaluator.composed.statistics
            results.append(
                SubsystemResult(
                    name=name,
                    unavailability=evaluator.unavailability(),
                    unreliability=(
                        evaluator.unreliability(mission_time, assume_no_repair=False)
                        if mission_time is not None
                        else None
                    ),
                    ctmc_states=evaluator.ctmc.num_states,
                    ctmc_transitions=evaluator.ctmc.num_transitions,
                    largest_intermediate_states=statistics.largest_intermediate_states,
                    largest_intermediate_transitions=statistics.largest_intermediate_transitions,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    # probability of a boolean expression over independent events
    # ------------------------------------------------------------------ #
    def _probability_of_expression(self, probabilities: dict[str, float]) -> float:
        literals = sorted({literal.component for literal in self.system_down.atoms()})
        if len(literals) <= 16:
            return _probability_by_enumeration(self.system_down, literals, probabilities)
        return _probability_structural(self.system_down, probabilities)


def _probability_by_enumeration(
    expression: Expression, literals: list[str], probabilities: dict[str, float]
) -> float:
    """Exact probability by summing over all truth assignments (small N)."""
    total = 0.0
    for assignment in itertools.product((False, True), repeat=len(literals)):
        values = dict(zip(literals, assignment))
        weight = 1.0
        for name, value in values.items():
            weight *= probabilities[name] if value else (1.0 - probabilities[name])
        if weight == 0.0:
            continue
        if _evaluate(expression, values):
            total += weight
    return total


def _probability_structural(
    expression: Expression, probabilities: dict[str, float]
) -> float:
    """Structural bottom-up probability (requires each literal to occur once)."""
    seen: set[str] = set()
    for literal in expression.atoms():
        if literal.component in seen:
            raise AnalysisError(
                "structural probability evaluation requires every subsystem to occur "
                f"at most once in the expression; {literal.component!r} repeats"
            )
        seen.add(literal.component)

    def recurse(node: Expression) -> float:
        if isinstance(node, Literal):
            return probabilities[node.component]
        if isinstance(node, And):
            result = 1.0
            for child in node.children:
                result *= recurse(child)
            return result
        if isinstance(node, Or):
            result = 1.0
            for child in node.children:
                result *= 1.0 - recurse(child)
            return 1.0 - result
        if isinstance(node, KOutOfN):
            child_probabilities = [recurse(child) for child in node.children]
            return _k_out_of_n_probability(node.k, child_probabilities)
        raise AnalysisError(f"unknown expression node {node!r}")

    return recurse(expression)


def _k_out_of_n_probability(k: int, probabilities: list[float]) -> float:
    """Probability that at least ``k`` of the independent events occur."""
    # Dynamic programming over the Poisson-binomial distribution.
    counts = [1.0] + [0.0] * len(probabilities)
    for probability in probabilities:
        for already in range(len(probabilities), 0, -1):
            counts[already] = counts[already] * (1 - probability) + counts[already - 1] * probability
        counts[0] *= 1 - probability
    return sum(counts[k:])


def _evaluate(expression: Expression, values: dict[str, bool]) -> bool:
    if isinstance(expression, Literal):
        return values[expression.component]
    if isinstance(expression, And):
        return all(_evaluate(child, values) for child in expression.children)
    if isinstance(expression, Or):
        return any(_evaluate(child, values) for child in expression.children)
    if isinstance(expression, KOutOfN):
        return sum(1 for child in expression.children if _evaluate(child, values)) >= expression.k
    raise AnalysisError(f"unknown expression node {expression!r}")


__all__ = ["ModularEvaluator", "SubsystemResult"]
