"""High-level evaluation of Arcade models (translate, compose, solve)."""

from .evaluator import ArcadeEvaluator, EvaluationReport
from .modular import ModularEvaluator, SubsystemResult

__all__ = ["ArcadeEvaluator", "EvaluationReport", "ModularEvaluator", "SubsystemResult"]
